// Differential equivalence suite for the compiled admission layer
// (src/plan/admission.h). Pins three contracts:
//
//  1. AdmissionProgram::AdmitRole is bit-exact with the interpreted
//     reference path (CompiledQuery::QualifiesFor + PartitionKeyFor +
//     carrier load) — fuzzed over random queries and random events,
//     including the cross-type / NaN / missing-attribute corners where the
//     typed opcodes must fall back to generic EvalCmp semantics.
//  2. BatchAdmitter's interning pass assigns ids and seals key hashes by
//     the documented rules (positive roles intern, negated roles look up,
//     partially covered negated roles never seal) — checked against a
//     hand-replicated KeyInterner.
//  3. AdmissionProgram::RolesFor yields exactly the dispatch order of the
//     analyzer's role map flattened by EventTypeId (the dense table the
//     retired query/role_table.h shim used to build) — one lowering, so
//     dispatch cannot drift between consumers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/value.h"
#include "container/key_interner.h"
#include "metrics/metrics.h"
#include "plan/admission.h"
#include "query/analyzer.h"
#include "query/compiled_query.h"
#include "test_util.h"

namespace aseq {
namespace {

using plan::AdmissionProgram;
using plan::AdmissionRecord;
using plan::BatchAdmitter;
using plan::RoleProgram;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

// Value equality that also identifies NaN with NaN: a NaN-valued partition
// attribute flows through both paths as the same payload, but
// Value::Equals (IEEE ==) would report the copies unequal.
bool SamePayload(const Value& a, const Value& b) {
  if (a.type() == ValueType::kDouble && b.type() == ValueType::kDouble &&
      std::isnan(a.AsDouble()) && std::isnan(b.AsDouble())) {
    return true;
  }
  return a.Equals(b);
}

bool SameDouble(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

// The interpreted reference: exactly what engines computed before the
// compiled admission layer, step by step.
struct InterpretedAdmission {
  bool admitted = false;
  PartitionKey key;
  std::vector<bool> covered;
  double carrier = 0.0;
};

InterpretedAdmission InterpretAdmit(const CompiledQuery& q, const Event& e,
                                    size_t elem_index) {
  InterpretedAdmission out;
  if (!q.QualifiesFor(e, elem_index)) return out;
  if (!q.PartitionKeyFor(e, elem_index, &out.key, &out.covered)) return out;
  if (q.agg_positive_pos() >= 0 &&
      static_cast<int>(elem_index) == q.agg().elem_index) {
    // QualifiesFor guarantees presence + numeric for the carrier.
    out.carrier = e.FindAttr(q.agg().attr)->ToDouble();
  }
  out.admitted = true;
  return out;
}

// Runs every role the event's type plays through both paths and asserts
// identical admission decisions, keys, coverage flags, and carriers.
void ExpectAdmissionEquivalence(const CompiledQuery& q,
                                const AdmissionProgram& program, const Event& e,
                                const std::string& context) {
  const std::vector<Role>* roles = q.FindRoles(e.type());
  const auto span = program.RolesFor(e.type());
  ASSERT_EQ(roles == nullptr ? size_t{0} : roles->size(), span.size())
      << context;
  for (size_t i = 0; i < span.size(); ++i) {
    const RoleProgram& rp = span[i];
    const Role& role = (*roles)[i];
    const std::string where =
        context + " elem " + std::to_string(role.elem_index);
    ASSERT_EQ(rp.role.negated, role.negated) << where;
    ASSERT_EQ(rp.role.elem_index, role.elem_index) << where;
    ASSERT_EQ(rp.role.position, role.position) << where;
    ASSERT_EQ(&rp, program.FindRole(e.type(), role.elem_index)) << where;

    const InterpretedAdmission ref = InterpretAdmit(q, e, role.elem_index);
    AdmissionRecord rec;
    EngineStats stats;
    const bool admitted = program.AdmitRole(e, rp, &rec, &stats);
    ASSERT_EQ(admitted, ref.admitted) << where;
    if (!admitted) {
      EXPECT_EQ(stats.adm_admitted, 0u) << where;
      EXPECT_EQ(stats.adm_rejected_local + stats.adm_missing_attr, 1u) << where;
      continue;
    }
    EXPECT_EQ(stats.adm_admitted, 1u) << where;
    EXPECT_TRUE(SameDouble(rec.carrier, ref.carrier))
        << where << ": carrier " << rec.carrier << " vs " << ref.carrier;

    PartitionKey mkey;
    std::vector<bool> mcov;
    program.MaterializeKey(rec, &mkey, &mcov);
    ASSERT_EQ(mkey.parts.size(), ref.key.parts.size()) << where;
    ASSERT_EQ(mcov.size(), ref.covered.size()) << where;
    for (size_t p = 0; p < mkey.parts.size(); ++p) {
      EXPECT_TRUE(SamePayload(mkey.parts[p], ref.key.parts[p]))
          << where << ": part " << p << " " << mkey.parts[p].ToString()
          << " vs " << ref.key.parts[p].ToString();
      EXPECT_EQ(mcov[p], ref.covered[p]) << where << ": part " << p;
      // Borrowed values point at the event and carry their ValueHash.
      if (mcov[p]) {
        ASSERT_NE(rec.part_vals[p], nullptr) << where;
        EXPECT_EQ(rec.part_hashes[p], ValueHash{}(*rec.part_vals[p])) << where;
      } else {
        EXPECT_EQ(rec.part_vals[p], nullptr) << where;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Random query / event generation
// ---------------------------------------------------------------------------

// Emits a random valid query over event types {A, B, C, N} and attributes
// {x, y, s, id, v, g}: random local predicates (typed int/double/string
// literal forms, literal-on-lhs, attr-vs-attr on one element), optional
// full-coverage equivalence chain, optional GROUP BY, random aggregate.
std::string RandomQueryText(std::mt19937* rng) {
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };

  struct Elem {
    const char* name;
    bool negated;
  };
  std::vector<Elem> elems;
  switch (pick(4)) {
    case 0:
      elems = {{"A", false}, {"B", false}};
      break;
    case 1:
      elems = {{"A", false}, {"N", true}, {"B", false}};
      break;
    case 2:
      elems = {{"A", false}, {"B", false}, {"C", false}};
      break;
    default:
      elems = {{"A", false}, {"N", true}, {"B", false}, {"C", false}};
      break;
  }
  std::string pattern;
  for (const Elem& e : elems) {
    if (!pattern.empty()) pattern += ", ";
    if (e.negated) pattern += "!";
    pattern += e.name;
  }

  static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  static const char* kPredAttrs[] = {"x", "y", "s"};
  static const char* kStrLits[] = {"a", "b", "hi", "zz"};
  std::vector<std::string> terms;
  const int num_preds = pick(4);
  for (int t = 0; t < num_preds; ++t) {
    const Elem& elem = elems[pick(static_cast<int>(elems.size()))];
    const std::string attr_ref =
        std::string(elem.name) + "." + kPredAttrs[pick(3)];
    const std::string op = kOps[pick(6)];
    std::string lit;
    switch (pick(4)) {
      case 0:  // int literal → kInt64Lit opcode
        lit = std::to_string(pick(5));
        break;
      case 1:  // double literal → kDoubleLit opcode (often vs int attrs)
        lit = std::to_string(pick(4)) + ".5";
        break;
      case 2:  // string literal → kStringLit opcode
        lit = std::string("'") + kStrLits[pick(4)] + "'";
        break;
      default: {  // attr-vs-attr on one element → kGeneric opcode
        const std::string other =
            std::string(elem.name) + "." + kPredAttrs[pick(3)];
        terms.push_back(attr_ref + " " + op + " " + other);
        continue;
      }
    }
    // Randomly place the literal on the lhs ("5 > A.x").
    terms.push_back(pick(2) == 0 ? attr_ref + " " + op + " " + lit
                                 : lit + " " + op + " " + attr_ref);
  }
  // Equivalence chain over `id` covering every positive element (anything
  // less is demoted to a join predicate, which admission ignores — and
  // would be rejected outright if it touched the negated element).
  if (pick(3) == 0) {
    std::vector<const char*> positives;
    for (const Elem& e : elems) {
      if (!e.negated) positives.push_back(e.name);
    }
    for (size_t i = 0; i + 1 < positives.size(); ++i) {
      terms.push_back(std::string(positives[i]) + ".id = " +
                      std::string(positives[i + 1]) + ".id");
    }
  }

  std::string text = "PATTERN SEQ(" + pattern + ")";
  for (size_t t = 0; t < terms.size(); ++t) {
    text += (t == 0 ? " WHERE " : " AND ") + terms[t];
  }
  if (pick(2) == 0) text += " GROUP BY g";
  switch (pick(5)) {
    case 0:
      text += " AGG COUNT";
      break;
    case 1:
      text += " AGG SUM(B.v)";
      break;
    case 2:
      text += " AGG AVG(B.v)";
      break;
    case 3:
      text += " AGG MIN(B.v)";
      break;
    default:
      text += " AGG MAX(B.v)";
      break;
  }
  text += " WITHIN 100s";
  return text;
}

// A random event of a random type (including one type outside every
// pattern), with each attribute randomly missing, null, int, double
// (occasionally NaN, often integral-valued to collide with int64 values
// across types), or a string from a small pool.
Event RandomEvent(Schema* schema, Timestamp ts, std::mt19937* rng) {
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };
  static const char* kTypes[] = {"A", "B", "C", "N", "Z"};
  static const char* kAttrs[] = {"x", "y", "s", "id", "v", "g"};
  static const char* kStrs[] = {"a", "b", "hi", "zz"};
  Event e(schema->RegisterEventType(kTypes[pick(5)]), ts);
  for (const char* attr : kAttrs) {
    const int roll = pick(10);
    if (roll < 2) continue;  // missing
    Value v;
    if (roll == 2) {
      v = Value();  // explicit null
    } else if (roll < 6) {
      v = Value(static_cast<int64_t>(pick(7) - 3));
    } else if (roll < 9) {
      const int d = pick(8);
      if (d == 7) {
        v = Value(std::numeric_limits<double>::quiet_NaN());
      } else {
        // Half-integral values land on int64 values half the time —
        // exercises cross-type numeric Equals/LessThan in the fallback.
        v = Value(static_cast<double>(d) * 0.5);
      }
    } else {
      v = Value(kStrs[pick(4)]);
    }
    e.SetAttr(schema->RegisterAttribute(attr), std::move(v));
  }
  return e;
}

// ---------------------------------------------------------------------------
// 1. Differential fuzz: compiled vs interpreted admission
// ---------------------------------------------------------------------------

TEST(AdmissionEquivalence, DifferentialFuzz) {
  std::mt19937 rng(20140622);  // deterministic
  for (int iter = 0; iter < 150; ++iter) {
    Schema schema;
    const std::string text = RandomQueryText(&rng);
    Analyzer analyzer(&schema);
    auto compiled = analyzer.AnalyzeText(text);
    ASSERT_TRUE(compiled.ok()) << text << " — " << compiled.status().ToString();
    const CompiledQuery q = std::move(compiled).value();
    const AdmissionProgram program(q);
    for (int ev = 0; ev < 120; ++ev) {
      const Event e = RandomEvent(&schema, ev + 1, &rng);
      ExpectAdmissionEquivalence(
          q, program, e,
          text + " [iter " + std::to_string(iter) + " ev " +
              std::to_string(ev) + "]");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Batched admission (no interner) emits exactly the records per-role
// admission admits, in dispatch order, with identical carriers.
TEST(AdmissionEquivalence, BatchMatchesPerRoleAdmission) {
  std::mt19937 rng(314159);
  BatchAdmitter admitter;
  for (int iter = 0; iter < 40; ++iter) {
    Schema schema;
    const std::string text = RandomQueryText(&rng);
    Analyzer analyzer(&schema);
    auto compiled = analyzer.AnalyzeText(text);
    ASSERT_TRUE(compiled.ok()) << text;
    const CompiledQuery q = std::move(compiled).value();
    const AdmissionProgram program(q);

    std::vector<Event> batch;
    for (int ev = 0; ev < 64; ++ev) {
      batch.push_back(RandomEvent(&schema, ev + 1, &rng));
    }
    EngineStats stats;
    admitter.AdmitBatch(program, batch, /*interner=*/nullptr, &stats);
    ASSERT_EQ(admitter.events().size(), batch.size()) << text;

    uint64_t admitted = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const Event& e = batch[i];
      std::vector<const RoleProgram*> expected;
      std::vector<double> carriers;
      for (const RoleProgram& rp : program.RolesFor(e.type())) {
        const InterpretedAdmission ref = InterpretAdmit(q, e, rp.role.elem_index);
        if (ref.admitted) {
          expected.push_back(&rp);
          carriers.push_back(ref.carrier);
        }
      }
      const auto records = admitter.RecordsFor(i);
      ASSERT_EQ(records.size(), expected.size())
          << text << " event " << i;
      for (size_t r = 0; r < records.size(); ++r) {
        EXPECT_EQ(records[r].role, expected[r]) << text << " event " << i;
        EXPECT_TRUE(SameDouble(records[r].carrier, carriers[r]))
            << text << " event " << i;
        // Without an interner key/key_hash are meaningless (recycled
        // scratch) — consumers read only role/carrier/part_vals/part_hashes.
      }
      admitted += records.size();
    }
    EXPECT_EQ(stats.adm_admitted, admitted) << text;
  }
}

// ---------------------------------------------------------------------------
// 2. Batch interning semantics vs a hand-replicated interner
// ---------------------------------------------------------------------------

// Replicates the documented interning rules record by record against a shadow
// interner and compares ids, sealed hashes, and the id-ordered value
// sequence (the checkpoint payload). Events must come from the schema the
// query was compiled against.
void CheckBatchInterning(Schema* schema, const CompiledQuery& q,
                         const std::string& text) {
  const AdmissionProgram program(q);
  const AdmissionProgram shadow_program(q);
  container::KeyInterner real;
  container::KeyInterner shadow;
  BatchAdmitter admitter;

  // Several batches through one admitter/interner pair: scratch reuse and
  // id continuity across batches are part of the contract.
  std::mt19937 ev_rng(424242);
  for (int batch_no = 0; batch_no < 6; ++batch_no) {
    std::vector<Event> batch;
    for (int ev = 0; ev < 48; ++ev) {
      batch.push_back(RandomEvent(schema, batch_no * 100 + ev + 1, &ev_rng));
    }
    admitter.AdmitBatch(program, batch, &real, nullptr);

    // Shadow replication: per record in order, covered parts intern
    // (positive) or look up (negated); hash sealed unless the role is a
    // partially covered negated probe (those scan the slab instead).
    size_t rec_idx = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const Event& e = batch[i];
      for (const RoleProgram& rp : shadow_program.RolesFor(e.type())) {
        AdmissionRecord rec;
        if (!shadow_program.AdmitRole(e, rp, &rec, nullptr)) continue;
        for (size_t p = 0; p < shadow_program.num_parts(); ++p) {
          if (rec.part_vals[p] == nullptr) continue;
          rec.key.ids[p] = rp.role.negated
                               ? shadow.Lookup(*rec.part_vals[p])
                               : shadow.Intern(*rec.part_vals[p]);
        }
        if (!(rp.role.negated && !rp.fully_covered)) {
          rec.key_hash = container::InternedKeyHash{}(rec.key);
        }
        ASSERT_LT(rec_idx, admitter.records().size()) << text;
        const AdmissionRecord& got = admitter.records()[rec_idx++];
        EXPECT_EQ(got.key, rec.key)
            << text << " batch " << batch_no << " event " << i;
        EXPECT_EQ(got.key_hash, rec.key_hash)
            << text << " batch " << batch_no << " event " << i;
      }
    }
    ASSERT_EQ(rec_idx, admitter.records().size()) << text;
  }

  // Identical id assignment history ⇒ identical checkpoint payload.
  ASSERT_EQ(real.size(), shadow.size()) << text;
  for (uint32_t id = 0; id < real.size(); ++id) {
    EXPECT_TRUE(SamePayload(real.ValueOf(id), shadow.ValueOf(id)))
        << text << " id " << id;
  }
}

TEST(AdmissionEquivalence, BatchInterningPartiallyCoveredNegation) {
  // `id` covers A and B but not !N; `g` covers everything — so the negated
  // role is partially covered (scans, never seals its hash) while positive
  // roles intern both parts.
  Schema schema;
  const CompiledQuery q = MustCompile(
      &schema,
      "PATTERN SEQ(A, !N, B) WHERE A.id = B.id GROUP BY g AGG COUNT "
      "WITHIN 100s");
  ASSERT_TRUE(q.partitioned());
  ASSERT_EQ(q.partition_spec().parts.size(), 2u);
  const AdmissionProgram program(q);
  for (const RoleProgram& rp :
       program.RolesFor(schema.RegisterEventType("N"))) {
    EXPECT_TRUE(rp.role.negated);
    EXPECT_FALSE(rp.fully_covered);
  }
  CheckBatchInterning(&schema, q, "partial-negation");
}

TEST(AdmissionEquivalence, BatchInterningFullyCoveredNegation) {
  // GROUP BY alone covers every element: the negated role is fully covered
  // — it looks up (never interns) and seals a hash targeting one partition.
  Schema schema;
  const CompiledQuery q = MustCompile(
      &schema, "PATTERN SEQ(A, !N, B) GROUP BY g AGG COUNT WITHIN 100s");
  ASSERT_TRUE(q.partitioned());
  const AdmissionProgram program(q);
  for (const RoleProgram& rp :
       program.RolesFor(schema.RegisterEventType("N"))) {
    EXPECT_TRUE(rp.role.negated);
    EXPECT_TRUE(rp.fully_covered);
  }
  CheckBatchInterning(&schema, q, "full-negation");
}

// Negated lookups never mint ids: a value only ever seen on the negated
// element stays out of the interner (kNoId probe), so id assignment is a
// pure function of the positive event stream.
TEST(AdmissionEquivalence, NegatedLookupDoesNotIntern) {
  Schema schema;
  const CompiledQuery q = MustCompile(
      &schema, "PATTERN SEQ(A, !N, B) GROUP BY g AGG COUNT WITHIN 100s");
  const AdmissionProgram program(q);
  std::vector<Event> batch = StreamBuilder(&schema)
                                 .Add("A", 1, {{"g", Value(int64_t{7})}})
                                 .Add("N", 2, {{"g", Value(int64_t{99})}})
                                 .Add("N", 3, {{"g", Value(int64_t{7})}})
                                 .Add("B", 4, {{"g", Value(int64_t{8})}})
                                 .Build();
  container::KeyInterner interner;
  BatchAdmitter admitter;
  admitter.AdmitBatch(program, batch, &interner, nullptr);
  ASSERT_EQ(admitter.records().size(), 4u);
  // Only the positive instances interned: g=7 (A) then g=8 (B).
  ASSERT_EQ(interner.size(), 2u);
  EXPECT_TRUE(interner.ValueOf(0).Equals(Value(int64_t{7})));
  EXPECT_TRUE(interner.ValueOf(1).Equals(Value(int64_t{8})));
  // The unseen negated value probes as kNoId; the seen one hits id 0.
  EXPECT_EQ(admitter.records()[1].key.ids[0], container::kNoId);
  EXPECT_EQ(admitter.records()[2].key.ids[0], 0u);
  // Fully covered negated probes still seal a target hash.
  EXPECT_EQ(admitter.records()[2].key_hash,
            container::InternedKeyHash{}(admitter.records()[2].key));
}

// ---------------------------------------------------------------------------
// 3. Typed-opcode corner cases (documented, beyond the fuzz)
// ---------------------------------------------------------------------------

struct CornerCase {
  const char* query;
  const char* attr;
  Value value;        // Value() = null attr; paired with `present`
  bool present;
  bool expect_admit;
  bool expect_generic;  // must have taken the EvalCmp fallback
};

void RunCornerCase(const CornerCase& c) {
  Schema schema;
  const CompiledQuery q = MustCompile(&schema, c.query);
  const AdmissionProgram program(q);
  Event e(schema.RegisterEventType("A"), 1);
  if (c.present) e.SetAttr(schema.RegisterAttribute(c.attr), c.value);
  ExpectAdmissionEquivalence(q, program, e, c.query);
  const RoleProgram* rp = program.FindRole(e.type(), 0);
  ASSERT_NE(rp, nullptr) << c.query;
  AdmissionRecord rec;
  EngineStats stats;
  EXPECT_EQ(program.AdmitRole(e, *rp, &rec, &stats), c.expect_admit)
      << c.query;
  EXPECT_EQ(stats.adm_generic_cmps > 0, c.expect_generic) << c.query;
}

TEST(AdmissionEquivalence, TypedPathsAndGenericFallback) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const CornerCase cases[] = {
      // Matching runtime types take the typed opcode (no generic cmps).
      {"PATTERN SEQ(A, B) WHERE A.x > 5 WITHIN 1s", "x", Value(int64_t{6}),
       true, true, false},
      {"PATTERN SEQ(A, B) WHERE A.y < 2.5 WITHIN 1s", "y", Value(2.0), true,
       true, false},
      {"PATTERN SEQ(A, B) WHERE A.s = 'hi' WITHIN 1s", "s", Value("hi"), true,
       true, false},
      // Literal-on-lhs typed form: 5 > x ⇔ x < 5.
      {"PATTERN SEQ(A, B) WHERE 5 > A.x WITHIN 1s", "x", Value(int64_t{4}),
       true, true, false},
      {"PATTERN SEQ(A, B) WHERE 5 > A.x WITHIN 1s", "x", Value(int64_t{5}),
       true, false, false},
      // Int attr vs double literal: cross-type numeric → generic fallback,
      // magnitude semantics (3 > 2.5).
      {"PATTERN SEQ(A, B) WHERE A.x > 2.5 WITHIN 1s", "x", Value(int64_t{3}),
       true, true, true},
      {"PATTERN SEQ(A, B) WHERE A.x > 2.5 WITHIN 1s", "x", Value(int64_t{2}),
       true, false, true},
      // String attr vs int literal: unordered — every ordered op false,
      // `!=` true.
      {"PATTERN SEQ(A, B) WHERE A.x < 5 WITHIN 1s", "x", Value("hi"), true,
       false, true},
      {"PATTERN SEQ(A, B) WHERE A.x != 5 WITHIN 1s", "x", Value("hi"), true,
       true, true},
      // NaN through the typed double path: phrased as EvalCmp phrases it,
      // so kLe = !(b < a) admits NaN while kLt rejects it.
      {"PATTERN SEQ(A, B) WHERE A.y < 10.5 WITHIN 1s", "y", Value(kNaN), true,
       false, false},
      {"PATTERN SEQ(A, B) WHERE A.y <= 10.5 WITHIN 1s", "y", Value(kNaN), true,
       true, false},
      {"PATTERN SEQ(A, B) WHERE A.y != 10.5 WITHIN 1s", "y", Value(kNaN), true,
       true, false},
      {"PATTERN SEQ(A, B) WHERE A.y = 10.5 WITHIN 1s", "y", Value(kNaN), true,
       false, false},
      // Missing attribute reads as null: `=` rejects, `!=` admits — via
      // the generic fallback in both cases.
      {"PATTERN SEQ(A, B) WHERE A.x = 5 WITHIN 1s", "x", Value(), false,
       false, true},
      {"PATTERN SEQ(A, B) WHERE A.x != 5 WITHIN 1s", "x", Value(), false,
       true, true},
      // Explicit null attribute behaves like a missing one.
      {"PATTERN SEQ(A, B) WHERE A.x = 5 WITHIN 1s", "x", Value(), true,
       false, true},
      // Attr-vs-attr on one element is always generic (x compared with
      // itself: x = x holds for int).
      {"PATTERN SEQ(A, B) WHERE A.x = A.x WITHIN 1s", "x", Value(int64_t{1}),
       true, true, true},
  };
  for (const CornerCase& c : cases) RunCornerCase(c);
}

TEST(AdmissionEquivalence, CarrierValidationAndLoad) {
  Schema schema;
  const CompiledQuery q =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 10s");
  const AdmissionProgram program(q);
  const EventTypeId b = schema.RegisterEventType("B");
  const AttrId v = schema.RegisterAttribute("v");
  const RoleProgram* rp = program.FindRole(b, 1);
  ASSERT_NE(rp, nullptr);
  EXPECT_TRUE(rp->is_carrier);

  AdmissionRecord rec;
  {  // Missing carrier attribute → rejected.
    Event e(b, 1);
    EngineStats stats;
    EXPECT_FALSE(program.AdmitRole(e, *rp, &rec, &stats));
    EXPECT_EQ(stats.adm_rejected_local, 1u);
    ExpectAdmissionEquivalence(q, program, e, "carrier-missing");
  }
  {  // Non-numeric carrier → rejected.
    Event e(b, 2);
    e.SetAttr(v, Value("oops"));
    EXPECT_FALSE(program.AdmitRole(e, *rp, &rec, nullptr));
    ExpectAdmissionEquivalence(q, program, e, "carrier-string");
  }
  {  // Numeric int carrier → admitted with its double value.
    Event e(b, 3);
    e.SetAttr(v, Value(int64_t{7}));
    ASSERT_TRUE(program.AdmitRole(e, *rp, &rec, nullptr));
    EXPECT_EQ(rec.carrier, 7.0);
    ExpectAdmissionEquivalence(q, program, e, "carrier-int");
  }
  {  // The non-carrier element ignores the aggregate attribute entirely.
    Event e(schema.RegisterEventType("A"), 4);
    const RoleProgram* a_rp = program.FindRole(e.type(), 0);
    ASSERT_NE(a_rp, nullptr);
    EXPECT_FALSE(a_rp->is_carrier);
    ASSERT_TRUE(program.AdmitRole(e, *a_rp, &rec, nullptr));
    EXPECT_EQ(rec.carrier, 0.0);
  }
}

TEST(AdmissionEquivalence, MissingPartitionAttributeCountsAndRejects) {
  Schema schema;
  const CompiledQuery q = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY g AGG COUNT WITHIN 10s");
  const AdmissionProgram program(q);
  Event e(schema.RegisterEventType("A"), 1);  // no `g`
  const RoleProgram* rp = program.FindRole(e.type(), 0);
  ASSERT_NE(rp, nullptr);
  AdmissionRecord rec;
  EngineStats stats;
  EXPECT_FALSE(program.AdmitRole(e, *rp, &rec, &stats));
  EXPECT_EQ(stats.adm_missing_attr, 1u);
  EXPECT_EQ(stats.adm_admitted, 0u);
  ExpectAdmissionEquivalence(q, program, e, "missing-partition-attr");
}

// ---------------------------------------------------------------------------
// 4. Dispatch order: the analyzer's role map, flattened, is the reference
// ---------------------------------------------------------------------------

void ExpectDispatchOrderMatchesRoleMap(const CompiledQuery& q,
                                       const std::string& text) {
  const AdmissionProgram program(q);
  // The reference: the analyzer's role map flattened into a dense table
  // indexed by EventTypeId, entries pointing into q's node-stable role
  // storage — exactly what the retired role_table.h shim built.
  std::vector<const std::vector<Role>*> table;
  for (const auto& [type, roles] : q.roles()) {
    if (type >= table.size()) table.resize(type + 1, nullptr);
    table[type] = &roles;
  }
  // Probe well past the table: RolesFor must be empty exactly where the
  // role map has no entry.
  const EventTypeId limit = static_cast<EventTypeId>(table.size() + 8);
  for (EventTypeId type = 0; type < limit; ++type) {
    const std::vector<Role>* roles =
        type < table.size() ? table[type] : nullptr;
    const auto span = program.RolesFor(type);
    ASSERT_EQ(roles == nullptr ? size_t{0} : roles->size(), span.size())
        << text << " type " << type;
    EXPECT_EQ(program.Relevant(type), !span.empty()) << text;
    if (roles == nullptr) continue;
    for (size_t i = 0; i < roles->size(); ++i) {
      EXPECT_EQ(span[i].role.negated, (*roles)[i].negated)
          << text << " type " << type << " slot " << i;
      EXPECT_EQ(span[i].role.elem_index, (*roles)[i].elem_index)
          << text << " type " << type << " slot " << i;
      EXPECT_EQ(span[i].role.position, (*roles)[i].position)
          << text << " type " << type << " slot " << i;
    }
  }
}

TEST(AdmissionEquivalence, DispatchOrderMatchesRoleMap) {
  // Hand-picked shapes that stress the ordering rules (duplicate types at
  // several positions dispatch in descending position order; negation
  // roles follow positives in ascending gap order).
  const char* fixed[] = {
      "PATTERN SEQ(A, B)",
      "PATTERN SEQ(A, B, A, C)",
      "PATTERN SEQ(A, A, A)",
      "PATTERN SEQ(A, !X, B, !X, C)",
      "PATTERN SEQ(A, !B, C) GROUP BY g AGG COUNT WITHIN 10s",
      "PATTERN SEQ(DELL, !QQQ, AMAT) WHERE QQQ.volume > 100 WITHIN 10s",
  };
  for (const char* text : fixed) {
    Schema schema;
    ExpectDispatchOrderMatchesRoleMap(MustCompile(&schema, text), text);
  }
  // Plus the random pool.
  std::mt19937 rng(271828);
  for (int iter = 0; iter < 60; ++iter) {
    Schema schema;
    const std::string text = RandomQueryText(&rng);
    Analyzer analyzer(&schema);
    auto compiled = analyzer.AnalyzeText(text);
    ASSERT_TRUE(compiled.ok()) << text;
    ExpectDispatchOrderMatchesRoleMap(std::move(compiled).value(), text);
  }
}

}  // namespace
}  // namespace aseq
