// The deterministic fault-injection framework: spec parsing, exact-hit
// firing semantics, seeded slow-delay derivation, the ckpt.write io-error
// path (no temp-file litter, previous snapshot intact), and graceful-stop
// behavior of the serial loop (drain + final checkpoint + exit summary).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "ckpt/snapshot.h"
#include "engine/runtime.h"
#include "fault/fault.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

/// Every test disarms on both ends: the injector is process-global and a
/// leaked arming would fire into an unrelated test.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::Global().Disarm(); }
  void TearDown() override { fault::Injector::Global().Disarm(); }
};

TEST_F(FaultInjectionTest, ParsesFullSpec) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(
      inj.Arm("worker.op@2:500:crash,ckpt.write:2:io-error,"
              "router.route:10:overload:5,admit.batch:3:slow:64",
              42)
          .ok());
  ASSERT_TRUE(inj.armed());
  ASSERT_EQ(inj.entries().size(), 4u);
  const fault::ArmedFault& w = inj.entries()[0];
  EXPECT_EQ(w.point, fault::Point::kWorkerOp);
  EXPECT_EQ(w.kind, fault::Kind::kCrash);
  EXPECT_EQ(w.lane, 2u);
  EXPECT_EQ(w.trigger, 500u);
  EXPECT_EQ(w.repeat, 1u);
  const fault::ArmedFault& c = inj.entries()[1];
  EXPECT_EQ(c.point, fault::Point::kCkptWrite);
  EXPECT_EQ(c.kind, fault::Kind::kIoError);
  EXPECT_EQ(c.lane, 0u);
  const fault::ArmedFault& r = inj.entries()[2];
  EXPECT_EQ(r.kind, fault::Kind::kOverload);
  EXPECT_EQ(r.repeat, 5u);
  const fault::ArmedFault& a = inj.entries()[3];
  EXPECT_EQ(a.kind, fault::Kind::kSlow);
  EXPECT_EQ(a.repeat, 64u);
  EXPECT_GE(a.delay_us, 50u);
  EXPECT_LE(a.delay_us, 250u);
}

TEST_F(FaultInjectionTest, DefaultsKindAndRepeat) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(inj.Arm("worker.op:7").ok());
  ASSERT_EQ(inj.entries().size(), 1u);
  EXPECT_EQ(inj.entries()[0].kind, fault::Kind::kCrash);
  EXPECT_EQ(inj.entries()[0].repeat, 1u);
  // Slow defaults to a window, not a single hit — one slow op is noise.
  ASSERT_TRUE(inj.Arm("worker.op:7:slow").ok());
  EXPECT_EQ(inj.entries()[0].repeat, 256u);
}

TEST_F(FaultInjectionTest, RejectsMalformedSpecs) {
  auto& inj = fault::Injector::Global();
  const char* bad[] = {
      "",                      // empty
      "worker.op",             // no trigger
      "nosuch.point:1",        // unknown point
      "worker.op:0",           // trigger must be >= 1
      "worker.op:1:explode",   // unknown kind
      "worker.op@x:1",         // non-numeric lane
      "worker.op@999:1",       // lane beyond the cap
      "worker.op:1:crash:0",   // zero repeat
      "worker.op:abc",         // non-numeric trigger
      "worker.op:1:crash:1:9",  // too many fields
  };
  for (const char* spec : bad) {
    Status s = inj.Arm(spec);
    EXPECT_FALSE(s.ok()) << "spec '" << spec << "' should not parse";
    EXPECT_FALSE(inj.armed()) << spec;
  }
}

TEST_F(FaultInjectionTest, FiresOnExactHitWindow) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(inj.Arm("admit.batch:2:slow:3", 1).ok());
  // Hits 1..5: the window [2, 5) fires, the rest do not.
  EXPECT_FALSE(inj.Hit(fault::Point::kAdmitBatch).has_value());
  for (int i = 0; i < 3; ++i) {
    auto fired = inj.Hit(fault::Point::kAdmitBatch);
    ASSERT_TRUE(fired.has_value()) << "hit " << (i + 2);
    EXPECT_EQ(fired->kind, fault::Kind::kSlow);
    EXPECT_GE(fired->delay_us, 50u);
    EXPECT_LE(fired->delay_us, 250u);
  }
  EXPECT_FALSE(inj.Hit(fault::Point::kAdmitBatch).has_value());
  EXPECT_EQ(inj.fired_count(), 3u);
  EXPECT_EQ(inj.hits(fault::Point::kAdmitBatch), 5u);
}

TEST_F(FaultInjectionTest, LanesCountIndependently) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(inj.Arm("worker.op@1:3:stall").ok());
  // Lane 0 hits never advance lane 1's counter.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.Hit(fault::Point::kWorkerOp, 0).has_value());
  }
  EXPECT_FALSE(inj.Hit(fault::Point::kWorkerOp, 1).has_value());
  EXPECT_FALSE(inj.Hit(fault::Point::kWorkerOp, 1).has_value());
  auto fired = inj.Hit(fault::Point::kWorkerOp, 1);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, fault::Kind::kStall);
  EXPECT_EQ(inj.hits(fault::Point::kWorkerOp, 0), 10u);
  EXPECT_EQ(inj.hits(fault::Point::kWorkerOp, 1), 3u);
}

TEST_F(FaultInjectionTest, SlowDelaysAreSeedDeterministic) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(inj.Arm("worker.op:1:slow,admit.batch:1:slow", 99).ok());
  std::vector<uint32_t> first;
  for (const auto& e : inj.entries()) first.push_back(e.delay_us);
  ASSERT_TRUE(inj.Arm("worker.op:1:slow,admit.batch:1:slow", 99).ok());
  std::vector<uint32_t> second;
  for (const auto& e : inj.entries()) second.push_back(e.delay_us);
  EXPECT_EQ(first, second) << "same seed must derive identical delays";
}

TEST_F(FaultInjectionTest, DisarmClearsEverything) {
  auto& inj = fault::Injector::Global();
  ASSERT_TRUE(inj.Arm("worker.op:1").ok());
  ASSERT_TRUE(inj.Hit(fault::Point::kWorkerOp).has_value());
  inj.Disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.fired_count(), 0u);
  EXPECT_EQ(inj.hits(fault::Point::kWorkerOp), 0u);
  EXPECT_TRUE(inj.entries().empty());
  // Hit on a disarmed injector is a no-op that does not count.
  EXPECT_FALSE(inj.Hit(fault::Point::kWorkerOp).has_value());
  EXPECT_EQ(inj.hits(fault::Point::kWorkerOp), 0u);
}

// ---------------------------------------------------------------------------
// ckpt.write injection through the real snapshot writer
// ---------------------------------------------------------------------------

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST_F(FaultInjectionTest, CkptWriteIoErrorLeavesPriorSnapshotIntact) {
  auto c = MakeStock(11, 600);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  auto engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<QueryEngine> engine = std::move(engine_or).value();
  RunResult ref = Runtime::RunEvents(c->events, engine.get());

  const std::string dir = FreshDir("fault-ckpt-io");
  const std::string path = ckpt::SnapshotPathForOffset(dir, c->events.size());
  ASSERT_TRUE(
      ckpt::SaveEngineSnapshot(path, *engine, c->events.size()).ok());

  // The injected write fails with IoError before touching the filesystem:
  // no temp litter, and the good snapshot is untouched.
  ASSERT_TRUE(fault::Injector::Global().Arm("ckpt.write:1:io-error").ok());
  Status s = ckpt::SaveEngineSnapshot(path, *engine, c->events.size());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("injected"), std::string::npos)
      << s.ToString();
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().string(), path) << "unexpected litter";
  }
  EXPECT_EQ(files, 1u);

  fault::Injector::Global().Disarm();
  auto restored_or = CreateAseqEngine(cq);
  ASSERT_TRUE(restored_or.ok());
  std::unique_ptr<QueryEngine> restored = std::move(restored_or).value();
  uint64_t offset = 0;
  ASSERT_TRUE(
      ckpt::RestoreEngineSnapshot(path, restored.get(), &offset).ok());
  EXPECT_EQ(offset, c->events.size());
  EXPECT_EQ(restored->stats().outputs, ref.outputs.size());
}

TEST_F(FaultInjectionTest, CheckpointStatusLatchesOnInjectedError) {
  auto c = MakeStock(12, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  auto engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<QueryEngine> engine = std::move(engine_or).value();

  const std::string dir = FreshDir("fault-ckpt-latch");
  RunOptions options;
  options.checkpoint_every = 300;
  options.checkpoint_dir = dir;
  // First write succeeds, second fails; the loop latches the error and
  // attempts no further snapshots (so exactly one fault fires).
  ASSERT_TRUE(fault::Injector::Global().Arm("ckpt.write:2:io-error").ok());
  BatchRunner runner(options);
  RunResult run = runner.RunEvents(c->events, engine.get());
  EXPECT_FALSE(run.checkpoint_status.ok());
  EXPECT_EQ(run.checkpoints_written, 1u);
  EXPECT_EQ(fault::Injector::Global().fired_count(), 1u);
  EXPECT_EQ(run.events, c->events.size());
}

// ---------------------------------------------------------------------------
// Graceful stop (the serial loop half; the CLI installs the signal
// handlers that set the flag)
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, StopFlagInterruptsAndWritesFinalCheckpoint) {
  auto c = MakeStock(13, 900);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  auto engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<QueryEngine> engine = std::move(engine_or).value();

  const std::string dir = FreshDir("fault-stop");
  std::atomic<bool> stop{true};  // "signal" already delivered
  RunOptions options;
  options.checkpoint_every = 100000;  // periodic checkpointing never due
  options.checkpoint_dir = dir;
  options.stop_requested = &stop;
  BatchRunner runner(options);
  RunResult run = runner.RunEvents(c->events, engine.get());
  EXPECT_TRUE(run.interrupted);
  EXPECT_EQ(run.events, 0u);
  // The final snapshot lands at the stop offset even though no periodic
  // checkpoint was due, so --restore-from resumes without replay.
  ASSERT_EQ(run.checkpoints_written, 1u);
  EXPECT_EQ(run.last_checkpoint_offset, 0u);

  auto resumed_or = CreateAseqEngine(cq);
  ASSERT_TRUE(resumed_or.ok());
  std::unique_ptr<QueryEngine> resumed = std::move(resumed_or).value();
  uint64_t offset = 1;
  ASSERT_TRUE(ckpt::RestoreEngineSnapshot(
                  ckpt::SnapshotPathForOffset(dir, 0), resumed.get(), &offset)
                  .ok());
  EXPECT_EQ(offset, 0u);

  // Resuming from the interruption point replays to the exact full-run
  // result.
  auto ref_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());
  RunResult tail = Runtime::RunEvents(c->events, resumed.get());
  ASSERT_EQ(ref.outputs.size(), tail.outputs.size());
  for (size_t i = 0; i < ref.outputs.size(); ++i) {
    EXPECT_EQ(ref.outputs[i].seq, tail.outputs[i].seq);
    EXPECT_TRUE(ref.outputs[i].value.Equals(tail.outputs[i].value));
  }
  EXPECT_EQ(ref_engine->stats().objects.peak(),
            resumed->stats().objects.peak());
}

TEST_F(FaultInjectionTest, UnsetStopFlagRunsToCompletion) {
  auto c = MakeStock(14, 400);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  auto engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<QueryEngine> engine = std::move(engine_or).value();
  std::atomic<bool> stop{false};
  RunOptions options;
  options.stop_requested = &stop;
  BatchRunner runner(options);
  RunResult run = runner.RunEvents(c->events, engine.get());
  EXPECT_FALSE(run.interrupted);
  EXPECT_EQ(run.events, c->events.size());
}

}  // namespace
}  // namespace aseq
