#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

std::vector<Output> Feed(QueryEngine* engine, const std::vector<Event>& events) {
  return Runtime::RunEvents(events, engine).outputs;
}

// --------------------------------------------------------------------------
// DPC (unbounded window)
// --------------------------------------------------------------------------

TEST(DpcEngineTest, CountsEveryTrigger) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C)");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->name(), "A-Seq(DPC)");
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("B", 2)
                                  .Add("C", 3)
                                  .Add("C", 4)
                                  .Add("B", 5)
                                  .Add("C", 6)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  // Triggers at each C: counts 1, 2, then 2 (prev) + (A,B)=2 -> 4.
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 2);
  EXPECT_EQ(CountOf(outputs[2]), 4);
}

TEST(DpcEngineTest, IgnoresForeignTypes) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B)");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("X", 1)
                                  .Add("A", 2)
                                  .Add("Y", 3)
                                  .Add("B", 4)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ((*engine)->stats().events_processed, 4u);
}

TEST(DpcEngineTest, EmptyStreamNoOutputs) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B)");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(Feed(engine->get(), {}).empty());
  std::vector<Output> poll = (*engine)->Poll(100);
  ASSERT_EQ(poll.size(), 1u);
  EXPECT_EQ(CountOf(poll[0]), 0);
}

// --------------------------------------------------------------------------
// SEM (sliding window) — the paper's Example 3 / Fig. 6
// --------------------------------------------------------------------------

TEST(SemEngineTest, PaperExample3) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C, D) WITHIN 7s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->name(), "A-Seq(SEM)");
  StreamBuilder b(&schema);
  b.Add("A", 1000)   // a1, expires at 8000
      .Add("B", 2000)   // b1
      .Add("C", 3000)   // c1
      .Add("A", 4000)   // a2
      .Add("C", 5000)   // c2
      .Add("B", 6000)   // b2
      .Add("D", 7000);  // d1 -> output 2 = 2 (a1) + 0 (a2)
  std::vector<Event> events = b.Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 2);
  EXPECT_EQ(outputs[0].ts, 7000);

  // c3 arrives at t=8s: a1's PreCntr expires exactly then.
  Event c3(*schema.FindEventType("C"), 8000);
  c3.set_seq(events.size());
  std::vector<Output> none;
  engine->get()->OnEvent(c3, &none);
  EXPECT_TRUE(none.empty());
  // "If users require a result at this moment, the output would be 0."
  std::vector<Output> poll = (*engine)->Poll(8000);
  ASSERT_EQ(poll.size(), 1u);
  EXPECT_EQ(CountOf(poll[0]), 0);

  // a3, then d2: only (a2, b2, c3, d2) survives -> 1.
  Event a3(*schema.FindEventType("A"), 9000);
  a3.set_seq(events.size() + 1);
  Event d2(*schema.FindEventType("D"), 10000);
  d2.set_seq(events.size() + 2);
  std::vector<Output> out2;
  engine->get()->OnEvent(a3, &out2);
  engine->get()->OnEvent(d2, &out2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(CountOf(out2[0]), 1);
}

TEST(SemEngineTest, ExpiryIsExactlyAtArrivalPlusWindow) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 100");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  // B exactly at expiry -> the (A) counter is already purged.
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 0).Add("B", 100).Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 0);
  // One ms earlier it still counts.
  auto engine2 = CreateAseqEngine(cq);
  std::vector<Event> events2 =
      StreamBuilder(&schema).Add("A", 0).Add("B", 99).Build();
  std::vector<Output> outputs2 = Feed(engine2->get(), events2);
  ASSERT_EQ(outputs2.size(), 1u);
  EXPECT_EQ(CountOf(outputs2[0]), 1);
}

TEST(SemEngineTest, NegationExample4) {
  // Fig. 7: (A, B, !C, D); <a1,b1,d1> is not counted since c1 sits between
  // b1 and d1.
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B, !C, D) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("A", 1500)
                                  .Add("B", 2000)
                                  .Add("C", 3000)
                                  .Add("B", 4000)
                                  .Add("D", 5000)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  // Valid: (a1, b2, d1), (a2, b2, d1); killed: both via b1.
  EXPECT_EQ(CountOf(outputs[0]), 2);
}

TEST(SemEngineTest, NegationAdjacentToStart) {
  // (A, !B, C): a B kills the start itself (explicit length-1 cell).
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, !B, C) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)  // a1
                                  .Add("B", 2000)  // kills a1
                                  .Add("A", 3000)  // a2
                                  .Add("C", 4000)  // only (a2, c1)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
}

TEST(SemEngineTest, LocalPredicateFiltersNegatedInstances) {
  // Only high-volume QQQ events invalidate.
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema,
      "PATTERN SEQ(DELL, !QQQ, AMAT) WHERE QQQ.volume > 100 WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("DELL", 1000)
          .Add("QQQ", 2000, {{"volume", Value(50)}})   // ignored
          .Add("AMAT", 3000)                           // match
          .Add("QQQ", 4000, {{"volume", Value(500)}})  // invalidates
          .Add("AMAT", 5000)                           // no new match
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 1);  // old match still live, no new one
}

TEST(SemEngineTest, SumAggregate) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG SUM(B.w) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("A", 2000)
                                  .Add("B", 3000, {{"w", Value(10.0)}})
                                  .Add("B", 4000, {{"w", Value(1.0)}})
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 20.0);  // 2 starts x 10
  EXPECT_DOUBLE_EQ(outputs[1].value.AsDouble(), 22.0);  // + 2 x 1
}

TEST(SemEngineTest, SumDropsExpiredStarts) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG SUM(A.w) WITHIN 1s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0, {{"w", Value(100.0)}})
                                  .Add("A", 800, {{"w", Value(7.0)}})
                                  .Add("B", 1200)  // a1 expired at 1000
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 7.0);
}

TEST(SemEngineTest, MinMaxAggregates) {
  Schema schema;
  CompiledQuery max_q =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG MAX(A.w) WITHIN 10s");
  auto max_engine = CreateAseqEngine(max_q);
  ASSERT_TRUE(max_engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"w", Value(5.0)}})
                                  .Add("A", 2000, {{"w", Value(9.0)}})
                                  .Add("B", 3000)
                                  .Build();
  std::vector<Output> outputs = Feed(max_engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 9.0);

  CompiledQuery min_q =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG MIN(A.w) WITHIN 10s");
  auto min_engine = CreateAseqEngine(min_q);
  std::vector<Output> outputs2 = Feed(min_engine->get(), events);
  ASSERT_EQ(outputs2.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs2[0].value.AsDouble(), 5.0);
}

TEST(SemEngineTest, MaxUndefinedWhenNoMatch) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG MAX(A.w) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events =
      StreamBuilder(&schema).Add("B", 1000).Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].value.is_null());
}

TEST(SemEngineTest, NonNumericCarrierInstancesIgnored) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG SUM(A.w) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"w", Value("oops")}})
                                  .Add("A", 2000, {{"w", Value(2.0)}})
                                  .Add("B", 3000)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 2.0);
}

TEST(SemEngineTest, DuplicateTypePattern) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, A) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("A", 2000)
                                  .Add("A", 3000)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  // Every A triggers; pairs: 0, 1, 3.
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(CountOf(outputs[0]), 0);
  EXPECT_EQ(CountOf(outputs[1]), 1);
  EXPECT_EQ(CountOf(outputs[2]), 3);
}

TEST(SemEngineTest, SingleTypePattern) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A) WITHIN 1s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0)
                                  .Add("A", 500)
                                  .Add("A", 1200)  // first A expired
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 2);
  EXPECT_EQ(CountOf(outputs[2]), 2);
}

// --------------------------------------------------------------------------
// HPC (equivalence predicates & GROUP BY)
// --------------------------------------------------------------------------

TEST(HpcEngineTest, EquivalencePartitioning) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) WHERE A.id = B.id WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->name(), "A-Seq(HPC)");
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("A", 1000, {{"id", Value(1)}})
          .Add("A", 2000, {{"id", Value(2)}})
          .Add("B", 3000, {{"id", Value(1)}})   // matches a(id=1) only
          .Add("B", 4000, {{"id", Value(3)}})   // matches nothing
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 1);  // total across partitions unchanged
}

TEST(HpcEngineTest, GroupByEmitsPerGroup) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("A", 1000, {{"ip", Value("x")}})
          .Add("A", 2000, {{"ip", Value("y")}})
          .Add("B", 3000, {{"ip", Value("x")}})
          .Add("B", 4000, {{"ip", Value("y")}})
          .Add("B", 5000, {{"ip", Value("y")}})
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 3u);
  ASSERT_TRUE(outputs[0].group.has_value());
  EXPECT_TRUE(outputs[0].group->Equals(Value("x")));
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_TRUE(outputs[1].group->Equals(Value("y")));
  EXPECT_EQ(CountOf(outputs[1]), 1);
  EXPECT_TRUE(outputs[2].group->Equals(Value("y")));
  EXPECT_EQ(CountOf(outputs[2]), 2);
}

TEST(HpcEngineTest, EventsMissingPartitionAttrIgnored) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) WHERE A.id = B.id WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)  // no id: ignored
                                  .Add("A", 1500, {{"id", Value(4)}})
                                  .Add("B", 2000, {{"id", Value(4)}})
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
}

TEST(HpcEngineTest, NegationWithinPartition) {
  // X with the matching id invalidates only that partition.
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema,
      "PATTERN SEQ(A, !X, B) WHERE A.id = X.id = B.id WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("A", 1000, {{"id", Value(1)}})
          .Add("A", 1500, {{"id", Value(2)}})
          .Add("X", 2000, {{"id", Value(1)}})  // kills partition 1 only
          .Add("B", 3000, {{"id", Value(1)}})
          .Add("B", 4000, {{"id", Value(2)}})
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 0);  // id=1 invalidated
  EXPECT_EQ(CountOf(outputs[1]), 1);  // id=2 unaffected
}

TEST(HpcEngineTest, UnconstrainedNegationBroadcasts) {
  // X is not in the equivalence class: any X invalidates every partition.
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, !X, B) WHERE A.id = B.id WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("A", 1000, {{"id", Value(1)}})
          .Add("A", 1500, {{"id", Value(2)}})
          .Add("X", 2000)
          .Add("B", 3000, {{"id", Value(1)}})
          .Add("B", 4000, {{"id", Value(2)}})
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 0);
  EXPECT_EQ(CountOf(outputs[1]), 0);
}

TEST(HpcEngineTest, PartitionsExpireAndAreDropped) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) WHERE A.id = B.id WITHIN 1s");
  auto engine = CreateAseqEngine(cq);
  HpcEngine* hpc = static_cast<HpcEngine*>(engine->get());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0, {{"id", Value(1)}})
                                  .Add("A", 100, {{"id", Value(2)}})
                                  .Add("B", 2000, {{"id", Value(1)}})
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 0);
  EXPECT_EQ(hpc->num_partitions(), 0u);  // all expired partitions dropped
}

TEST(HpcEngineTest, PollReportsGroups) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"ip", Value("x")}})
                                  .Add("B", 2000, {{"ip", Value("x")}})
                                  .Build();
  Feed(engine->get(), events);
  std::vector<Output> poll = (*engine)->Poll(3000);
  ASSERT_EQ(poll.size(), 1u);
  EXPECT_TRUE(poll[0].group->Equals(Value("x")));
  EXPECT_EQ(CountOf(poll[0]), 1);
}

TEST(AseqFactoryTest, RejectsJoinPredicates) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) WHERE A.x < B.x WITHIN 1s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace aseq
