// Batched-vs-per-event equivalence: the contract of the batched execution
// core is that OnBatch produces *byte-identical* output sequences and
// identical engine stats (modulo the batch counters themselves) to the
// per-event reference path, for every engine and every batch size —
// including sizes that straddle window-expiry boundaries mid-batch.
//
// Every engine runs fresh per configuration: the per-event reference via
// Runtime::RunEvents, then one batched run per size in {1, 3, 7, 64, 1024}
// via BatchRunner. Any divergence in an output's (ts, seq, group, value)
// or in (events_processed, outputs, work_units, objects) is a bug in a
// batched override's hoisting logic.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/ecube_engine.h"
#include "baseline/stack_engine.h"
#include "common/rng.h"
#include "engine/change_detector.h"
#include "engine/reordering_engine.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "stream/workload.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

const size_t kBatchSizes[] = {1, 3, 7, 64, 1024};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

void ExpectOutputEqual(const Output& ref, const Output& got, size_t index,
                       const std::string& context) {
  EXPECT_EQ(ref.ts, got.ts) << context << " output#" << index;
  EXPECT_EQ(ref.seq, got.seq) << context << " output#" << index;
  ASSERT_EQ(ref.group.has_value(), got.group.has_value())
      << context << " output#" << index;
  if (ref.group.has_value()) {
    EXPECT_TRUE(ref.group->Equals(*got.group))
        << context << " output#" << index << ": group "
        << ref.group->ToString() << " vs " << got.group->ToString();
  }
  EXPECT_TRUE(ref.value.Equals(got.value))
      << context << " output#" << index << ": " << ref.value.ToString()
      << " vs " << got.value.ToString();
}

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    ExpectOutputEqual(ref[i], got[i], i, context);
  }
}

void ExpectMultiOutputsEqual(const std::vector<MultiOutput>& ref,
                             const std::vector<MultiOutput>& got,
                             const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].query_index, got[i].query_index)
        << context << " output#" << i;
    ExpectOutputEqual(ref[i].output, got[i].output, i, context);
  }
}

/// Stats must match exactly except for the batch counters, which exist
/// only on the batched path by construction.
void ExpectStatsEqual(const EngineStats& ref, const EngineStats& got,
                      const std::string& context) {
  EXPECT_EQ(ref.events_processed, got.events_processed) << context;
  EXPECT_EQ(ref.outputs, got.outputs) << context;
  EXPECT_EQ(ref.work_units, got.work_units) << context;
  EXPECT_EQ(ref.objects.peak(), got.objects.peak()) << context;
  EXPECT_EQ(ref.objects.current(), got.objects.current()) << context;
}

/// Runs `factory`-built engines over `events` per-event (reference) and
/// batched at every size, comparing outputs and stats.
void CheckSingle(const std::function<std::unique_ptr<QueryEngine>()>& factory,
                 const std::vector<Event>& events, const std::string& label) {
  auto ref_engine = factory();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";
  for (size_t batch_size : kBatchSizes) {
    const std::string context =
        label + " @batch=" + std::to_string(batch_size);
    auto engine = factory();
    BatchRunner runner;
    {
      RunOptions options;
      options.batch_size = batch_size;
      runner.set_options(options);
    }
    RunResult got = runner.RunEvents(events, engine.get());
    EXPECT_EQ(got.batch_size, batch_size) << context;
    ExpectOutputsEqual(ref.outputs, got.outputs, context);
    ExpectStatsEqual(ref_engine->stats(), engine->stats(), context);
  }
}

/// Multi-query counterpart of CheckSingle.
void CheckMulti(
    const std::function<std::unique_ptr<MultiQueryEngine>()>& factory,
    const std::vector<Event>& events, const std::string& label) {
  auto ref_engine = factory();
  MultiRunResult ref = Runtime::RunMultiEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";
  for (size_t batch_size : kBatchSizes) {
    const std::string context =
        label + " @batch=" + std::to_string(batch_size);
    auto engine = factory();
    BatchRunner runner;
    {
      RunOptions options;
      options.batch_size = batch_size;
      runner.set_options(options);
    }
    MultiRunResult got = runner.RunMultiEvents(events, engine.get());
    ExpectMultiOutputsEqual(ref.outputs, got.outputs, context);
    ExpectStatsEqual(ref_engine->stats(), engine->stats(), context);
  }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

std::unique_ptr<QueryEngine> MustCreateAseq(const CompiledQuery& cq) {
  auto engine = CreateAseqEngine(cq);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

// ---------------------------------------------------------------------------
// Single-query engines
// ---------------------------------------------------------------------------

TEST(BatchEquivalenceTest, AseqDpcUnbounded) {
  auto c = MakeStock(21, 1200);
  CompiledQuery cq =
      MustCompile(&c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events, "aseq-dpc");
}

TEST(BatchEquivalenceTest, AseqSemWindowed) {
  auto c = MakeStock(22, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events, "aseq-sem");
}

TEST(BatchEquivalenceTest, AseqSemNegation) {
  auto c = MakeStock(23, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events,
              "aseq-sem-negation");
}

TEST(BatchEquivalenceTest, AseqSemSumAggregate) {
  auto c = MakeStock(24, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG SUM(IPIX.volume) WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events, "aseq-sem-sum");
}

TEST(BatchEquivalenceTest, HpcGroupBy) {
  auto c = MakeStock(25, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events, "hpc-groupby");
}

TEST(BatchEquivalenceTest, HpcEquivalencePredicate) {
  auto c = MakeStock(26, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) WHERE DELL.traderId = IPIX.traderId = "
      "AMAT.traderId AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events, "hpc-equiv");
}

TEST(BatchEquivalenceTest, HpcEquivalenceWithNegation) {
  auto c = MakeStock(27, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, !QQQ, AMAT) WHERE DELL.traderId = QQQ.traderId = "
      "AMAT.traderId AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return MustCreateAseq(cq); }, c->events,
              "hpc-equiv-negation");
}

TEST(BatchEquivalenceTest, StackEngineJoinPredicate) {
  auto c = MakeStock(28, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 800ms");
  CheckSingle([&] { return std::make_unique<StackEngine>(cq); }, c->events,
              "stack-join");
}

TEST(BatchEquivalenceTest, StackEngineNegation) {
  auto c = MakeStock(29, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 800ms");
  CheckSingle([&] { return std::make_unique<StackEngine>(cq); }, c->events,
              "stack-negation");
}

TEST(BatchEquivalenceTest, ChangeDetectingEngine) {
  auto c = MakeStock(30, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 500ms");
  CheckSingle(
      [&] {
        return std::make_unique<ChangeDetectingEngine>(MustCreateAseq(cq));
      },
      c->events, "change-detector");
}

// ---------------------------------------------------------------------------
// Reordering adapters over out-of-order input
// ---------------------------------------------------------------------------

/// Displaces events by disjoint two-apart swaps: bounded disorder that a
/// 200ms K-slack absorbs without drops.
std::vector<Event> Shuffle(std::vector<Event> events, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i + 3 < events.size(); i += 3) {
    if (rng.NextBool(0.5)) std::swap(events[i], events[i + 2]);
  }
  AssignSeqNums(&events);
  return events;
}

TEST(BatchEquivalenceTest, ReorderingEngineOutOfOrder) {
  auto c = MakeStock(31, 1500);
  std::vector<Event> shuffled = Shuffle(c->events, 99);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms");

  auto factory = [&] {
    return std::make_unique<ReorderingEngine>(MustCreateAseq(cq),
                                              /*slack_ms=*/200);
  };
  // Inline CheckSingle so both paths can also drain via Finish() — the
  // outputs produced after end-of-stream must match too.
  auto ref_engine = factory();
  RunResult ref = Runtime::RunEvents(shuffled, ref_engine.get());
  ref_engine->Finish(&ref.outputs);
  EXPECT_EQ(ref_engine->dropped_events(), 0u);
  ASSERT_GT(ref.outputs.size(), 0u);
  for (size_t batch_size : kBatchSizes) {
    const std::string context =
        "reordering @batch=" + std::to_string(batch_size);
    auto engine = factory();
    BatchRunner runner;
    {
      RunOptions options;
      options.batch_size = batch_size;
      runner.set_options(options);
    }
    RunResult got = runner.RunEvents(shuffled, engine.get());
    engine->Finish(&got.outputs);
    ExpectOutputsEqual(ref.outputs, got.outputs, context);
    ExpectStatsEqual(ref_engine->stats(), engine->stats(), context);
  }
}

TEST(BatchEquivalenceTest, ReorderingMultiEngineOutOfOrder) {
  Schema schema;
  SharedWorkload workload = MakePrefixSharedWorkload(3, 2, 4, 2000);
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const Query& q : workload.queries) {
    auto cq = analyzer.Analyze(q);
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
    queries.push_back(std::move(cq).value());
  }
  StreamConfig config = MakeWorkloadStreamConfig(workload, 32, 1200, 0, 50);
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = Shuffle(gen.Generate(), 7);

  auto factory = [&]() -> std::unique_ptr<MultiQueryEngine> {
    auto inner = NonSharedEngine::CreateAseq(queries);
    EXPECT_TRUE(inner.ok()) << inner.status().ToString();
    return std::make_unique<ReorderingMultiEngine>(std::move(inner).value(),
                                                   /*slack_ms=*/300);
  };
  auto ref_engine = factory();
  MultiRunResult ref = Runtime::RunMultiEvents(events, ref_engine.get());
  static_cast<ReorderingMultiEngine*>(ref_engine.get())->Finish(&ref.outputs);
  ASSERT_GT(ref.outputs.size(), 0u);
  for (size_t batch_size : kBatchSizes) {
    const std::string context =
        "reordering-multi @batch=" + std::to_string(batch_size);
    auto engine = factory();
    BatchRunner runner;
    {
      RunOptions options;
      options.batch_size = batch_size;
      runner.set_options(options);
    }
    MultiRunResult got = runner.RunMultiEvents(events, engine.get());
    static_cast<ReorderingMultiEngine*>(engine.get())->Finish(&got.outputs);
    ExpectMultiOutputsEqual(ref.outputs, got.outputs, context);
    ExpectStatsEqual(ref_engine->stats(), engine->stats(), context);
  }
}

// ---------------------------------------------------------------------------
// Multi-query engines
// ---------------------------------------------------------------------------

struct MultiCase {
  Schema schema;
  SharedWorkload workload;
  std::vector<CompiledQuery> queries;
  std::vector<Event> events;
};

std::unique_ptr<MultiCase> MakeMulti(SharedWorkload workload, uint64_t seed,
                                     size_t n) {
  auto c = std::make_unique<MultiCase>();
  c->workload = std::move(workload);
  Analyzer analyzer(&c->schema);
  for (const Query& q : c->workload.queries) {
    auto cq = analyzer.Analyze(q);
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
    c->queries.push_back(std::move(cq).value());
  }
  StreamConfig config =
      MakeWorkloadStreamConfig(c->workload, seed, n, 0, 50);
  StreamGenerator gen(config, &c->schema);
  c->events = gen.Generate();
  AssignSeqNums(&c->events);
  return c;
}

TEST(BatchEquivalenceTest, PreTreeEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(3, 2, 4, 2000), 41, 1500);
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = PreTreeEngine::Create(c->queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "pretree");
}

TEST(BatchEquivalenceTest, ChopConnectEngine) {
  auto c = MakeMulti(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 42, 1500);
  ChopPlan plan = PlanChopConnect(c->queries);
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = ChopConnectEngine::Create(c->queries, plan);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "chop-connect");
}

TEST(BatchEquivalenceTest, EcubeEngine) {
  auto c = MakeMulti(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 43, 1200);
  std::vector<EventTypeId> shared;
  for (const std::string& name : c->workload.shared_types) {
    shared.push_back(*c->schema.FindEventType(name));
  }
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = EcubeEngine::Create(c->queries, shared);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "ecube");
}

TEST(BatchEquivalenceTest, NonSharedEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(3, 2, 4, 2000), 44, 1500);
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = NonSharedEngine::CreateAseq(c->queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "nonshared");
}

TEST(BatchEquivalenceTest, NonSharedStackEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(2, 2, 3, 1000), 45, 1000);
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        return NonSharedEngine::CreateStackBased(c->queries);
      },
      c->events, "nonshared-stack");
}

TEST(BatchEquivalenceTest, HybridEngine) {
  Schema schema;
  StockStreamOptions options;
  options.seed = 46;
  options.num_events = 2000;
  options.max_gap_ms = 8;
  options.num_traders = 5;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);

  // Mixed workload exercising every routing path (PreTree, ChopConnect,
  // per-query A-Seq, stack fallback) inside one hybrid engine.
  std::vector<const char*> texts = {
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX, QQQ) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(INTC, MSFT, CSCO) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(ORCL, MSFT, CSCO) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 1s",
  };
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const char* text : texts) {
    auto cq = analyzer.AnalyzeText(text);
    ASSERT_TRUE(cq.ok()) << text << ": " << cq.status().ToString();
    queries.push_back(std::move(cq).value());
  }
  CheckMulti(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = HybridMultiEngine::Create(queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      events, "hybrid");
}

// ---------------------------------------------------------------------------
// Batch accounting sanity: the counters the equivalence check ignores
// ---------------------------------------------------------------------------

TEST(BatchEquivalenceTest, BatchCountersRecorded) {
  auto c = MakeStock(47, 1000);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 800ms");
  auto engine = MustCreateAseq(cq);
  RunOptions options;
  options.collect_outputs = false;
  options.batch_size = 64;
  BatchRunner runner(options);
  runner.RunEvents(c->events, engine.get());
  const EngineStats& stats = engine->stats();
  EXPECT_EQ(stats.batches_processed, (c->events.size() + 63) / 64);
  EXPECT_EQ(stats.max_batch_events, 64u);

  // The per-event reference path never touches the batch counters.
  auto ref_engine = MustCreateAseq(cq);
  Runtime::RunEvents(c->events, ref_engine.get());
  EXPECT_EQ(ref_engine->stats().batches_processed, 0u);
  EXPECT_EQ(ref_engine->stats().max_batch_events, 0u);
}

}  // namespace
}  // namespace aseq
