// Long-run stress and determinism tests: 100k-event streams through every
// engine family, checking invariants the short tests cannot see —
// bit-exact determinism per seed, object accounting that returns to the
// live-state level, monotone work counters, and bounded state under
// windowed execution.

#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "stream/workload.h"

namespace aseq {
namespace {

std::vector<Event> BigStream(Schema* schema) {
  StockStreamOptions options;
  options.seed = 424242;
  options.num_events = 100000;
  options.max_gap_ms = 4;
  std::vector<Event> events = GenerateStockStream(options, schema);
  AssignSeqNums(&events);
  return events;
}

TEST(StressTest, HundredThousandEventsThroughSem) {
  Schema schema;
  std::vector<Event> events = BigStream(&schema);
  Analyzer analyzer(&schema);
  auto cq = analyzer.AnalyzeText(
      "PATTERN SEQ(DELL, IPIX, AMAT, QQQ) AGG COUNT WITHIN 2s");
  ASSERT_TRUE(cq.ok());
  auto engine = CreateAseqEngine(*cq);
  RunResult result = Runtime::RunEvents(events, engine->get());
  EXPECT_EQ(result.events, 100000u);
  EXPECT_GT(result.outputs.size(), 1000u);
  // Peak state stays bounded by the live-start count, far below the
  // event count (the paper's memory claim).
  EXPECT_LT(engine->get()->stats().objects.peak(), 1000);
  EXPECT_GT(engine->get()->stats().work_units, 100000u);
}

TEST(StressTest, DeterministicAcrossRuns) {
  for (const char* text :
       {"PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s",
        "PATTERN SEQ(DELL, !QQQ, AMAT) AGG SUM(AMAT.volume) WITHIN 1s",
        "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 1s"}) {
    std::vector<std::vector<Output>> runs;
    for (int round = 0; round < 2; ++round) {
      Schema schema;
      StockStreamOptions options;
      options.seed = 7;
      options.num_events = 30000;
      options.max_gap_ms = 5;
      std::vector<Event> events = GenerateStockStream(options, &schema);
      AssignSeqNums(&events);
      Analyzer analyzer(&schema);
      auto cq = analyzer.AnalyzeText(text);
      ASSERT_TRUE(cq.ok());
      auto engine = CreateAseqEngine(*cq);
      runs.push_back(Runtime::RunEvents(events, engine->get()).outputs);
    }
    ASSERT_EQ(runs[0].size(), runs[1].size()) << text;
    for (size_t i = 0; i < runs[0].size(); ++i) {
      ASSERT_EQ(runs[0][i].ts, runs[1][i].ts) << text;
      ASSERT_TRUE(runs[0][i].value.Equals(runs[1][i].value)) << text;
    }
  }
}

TEST(StressTest, StackEngineStateReturnsToWindowLevel) {
  Schema schema;
  std::vector<Event> events = BigStream(&schema);
  Analyzer analyzer(&schema);
  auto cq = analyzer.AnalyzeText(
      "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 500");
  ASSERT_TRUE(cq.ok());
  StackEngine engine(*cq);
  Runtime::RunEvents(events, &engine);
  // Current live objects are bounded by one window's worth of state,
  // orders of magnitude below the total processed volume.
  EXPECT_LT(engine.stats().objects.current(),
            engine.stats().objects.peak() + 1);
  EXPECT_LT(engine.stats().objects.current(), 20000);
  EXPECT_GT(engine.stats().events_processed, 0u);
}

TEST(StressTest, MultiEnginesSurviveLongRunsAndAgree) {
  SharedWorkload workload = MakeSubstringSharedWorkload(4, 1, 2, 0, 1500);
  Schema schema;
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const Query& q : workload.queries) {
    queries.push_back(std::move(analyzer.Analyze(q)).value());
  }
  StreamConfig config = MakeWorkloadStreamConfig(workload, 5, 60000, 0, 6);
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);

  auto ns = NonSharedEngine::CreateAseq(queries);
  auto pt = PreTreeEngine::Create(queries);
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  auto cc = ChopConnectEngine::Create(queries, PlanChopConnect(queries));
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();

  MultiRunResult ns_run = Runtime::RunMultiEvents(events, ns->get());
  MultiRunResult pt_run = Runtime::RunMultiEvents(events, pt->get());
  MultiRunResult cc_run = Runtime::RunMultiEvents(events, cc->get());
  ASSERT_EQ(ns_run.outputs.size(), pt_run.outputs.size());
  ASSERT_EQ(ns_run.outputs.size(), cc_run.outputs.size());
  EXPECT_GT(ns_run.outputs.size(), 1000u);
  uint64_t checked = 0;
  for (size_t i = 0; i < ns_run.outputs.size(); ++i) {
    ASSERT_EQ(ns_run.outputs[i].query_index, pt_run.outputs[i].query_index);
    ASSERT_TRUE(ns_run.outputs[i].output.value.Equals(
        pt_run.outputs[i].output.value))
        << "pretree diverged at output " << i;
    ASSERT_TRUE(ns_run.outputs[i].output.value.Equals(
        cc_run.outputs[i].output.value))
        << "chop-connect diverged at output " << i;
    ++checked;
  }
  EXPECT_EQ(checked, ns_run.outputs.size());
}

TEST(StressTest, HpcManyPartitions) {
  Schema schema;
  StockStreamOptions options;
  options.seed = 11;
  options.num_events = 50000;
  options.max_gap_ms = 4;
  options.num_traders = 2000;  // many distinct partition keys
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);
  Analyzer analyzer(&schema);
  auto cq = analyzer.AnalyzeText(
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.traderId = IPIX.traderId "
      "AGG COUNT WITHIN 2s");
  ASSERT_TRUE(cq.ok());
  auto engine = CreateAseqEngine(*cq);
  RunResult result = Runtime::RunEvents(events, engine->get());
  EXPECT_EQ(result.events, 50000u);
  // Expired partitions must be reclaimed, not accumulate forever.
  HpcEngine* hpc = static_cast<HpcEngine*>(engine->get());
  (void)engine->get()->Poll(events.back().ts() + 10000);
  EXPECT_EQ(hpc->num_partitions(), 0u);
}

}  // namespace
}  // namespace aseq
