#include <gtest/gtest.h>

#include <unordered_set>

#include "common/event.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace aseq {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("hello");
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  ASEQ_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

TEST(ValueTest, Types) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(5).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("abc")).type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(5).Equals(Value(5.0)));
  EXPECT_FALSE(Value(5).Equals(Value(5.5)));
  EXPECT_TRUE(Value(5).Equals(Value(5)));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_TRUE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(0)));
  EXPECT_FALSE(Value(0).Equals(Value()));
}

TEST(ValueTest, StringVsNumberUnequal) {
  EXPECT_FALSE(Value("5").Equals(Value(5)));
  EXPECT_FALSE(Value("5").ComparableWith(Value(5)));
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value(1).LessThan(Value(2)));
  EXPECT_TRUE(Value(1).LessThan(Value(1.5)));
  EXPECT_FALSE(Value(2).LessThan(Value(1)));
  EXPECT_TRUE(Value("a").LessThan(Value("b")));
  EXPECT_FALSE(Value("a").LessThan(Value(1)));  // unordered
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value(7).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  ValueTotalLess less;
  EXPECT_TRUE(less(Value(), Value(0)));
  EXPECT_TRUE(less(Value(99), Value("a")));
  EXPECT_FALSE(less(Value("a"), Value(99)));
  EXPECT_FALSE(less(Value(5), Value(5.0)));
  EXPECT_FALSE(less(Value(5.0), Value(5)));
}

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

TEST(SchemaTest, RegistrationIsIdempotent) {
  Schema schema;
  EventTypeId a1 = schema.RegisterEventType("A");
  EventTypeId a2 = schema.RegisterEventType("A");
  EventTypeId b = schema.RegisterEventType("B");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(schema.num_event_types(), 2u);
}

TEST(SchemaTest, LookupAndNames) {
  Schema schema;
  EventTypeId a = schema.RegisterEventType("DELL");
  AttrId p = schema.RegisterAttribute("price");
  ASSERT_TRUE(schema.FindEventType("DELL").ok());
  EXPECT_EQ(*schema.FindEventType("DELL"), a);
  EXPECT_EQ(*schema.FindAttribute("price"), p);
  EXPECT_EQ(schema.EventTypeName(a), "DELL");
  EXPECT_EQ(schema.AttributeName(p), "price");
  EXPECT_FALSE(schema.FindEventType("IPIX").ok());
  EXPECT_EQ(schema.FindEventType("IPIX").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, UnknownIdsRenderQuestionMark) {
  Schema schema;
  EXPECT_EQ(schema.EventTypeName(99), "?");
  EXPECT_EQ(schema.AttributeName(99), "?");
}

// --------------------------------------------------------------------------
// Event
// --------------------------------------------------------------------------

TEST(EventTest, AttributeAccess) {
  Schema schema;
  AttrId price = schema.RegisterAttribute("price");
  AttrId volume = schema.RegisterAttribute("volume");
  Event e(schema.RegisterEventType("DELL"), 100);
  e.SetAttr(price, Value(24.5));
  EXPECT_NE(e.FindAttr(price), nullptr);
  EXPECT_EQ(e.FindAttr(volume), nullptr);
  EXPECT_TRUE(e.GetAttr(price).Equals(Value(24.5)));
  EXPECT_TRUE(e.GetAttr(volume).is_null());
}

TEST(EventTest, SetAttrOverwrites) {
  Schema schema;
  AttrId price = schema.RegisterAttribute("price");
  Event e(schema.RegisterEventType("DELL"), 100);
  e.SetAttr(price, Value(1));
  e.SetAttr(price, Value(2));
  EXPECT_TRUE(e.GetAttr(price).Equals(Value(2)));
  EXPECT_EQ(e.attrs().size(), 1u);
}

TEST(EventTest, ToStringRendersTypeAndAttrs) {
  Schema schema;
  Event e(schema.RegisterEventType("DELL"), 7);
  e.SetAttr(schema.RegisterAttribute("v"), Value(3));
  EXPECT_EQ(e.ToString(schema), "DELL@7{v=3}");
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(rng.NextUInt(5), 5u);
  }
}

TEST(RngTest, CoversRange) {
  Rng rng(2);
  std::unordered_set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

// --------------------------------------------------------------------------
// string_util
// --------------------------------------------------------------------------

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, CaseInsensitiveEquals) {
  EXPECT_TRUE(EqualsIgnoreCase("PaTtErN", "pattern"));
  EXPECT_FALSE(EqualsIgnoreCase("pattern", "patterns"));
  EXPECT_EQ(ToUpperAscii("seq"), "SEQ");
}

}  // namespace
}  // namespace aseq
