#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace aseq {
namespace {

TEST(ObjectCounterTest, TracksCurrentAndPeak) {
  ObjectCounter counter;
  EXPECT_EQ(counter.current(), 0);
  EXPECT_EQ(counter.peak(), 0);
  counter.Add(5);
  counter.Add(3);
  EXPECT_EQ(counter.current(), 8);
  EXPECT_EQ(counter.peak(), 8);
  counter.Remove(6);
  EXPECT_EQ(counter.current(), 2);
  EXPECT_EQ(counter.peak(), 8);  // peak is sticky
  counter.Add(1);
  EXPECT_EQ(counter.peak(), 8);
  counter.Add(10);
  EXPECT_EQ(counter.peak(), 13);
}

TEST(ObjectCounterTest, NegativeDeltasViaAdd) {
  // NonSharedEngine feeds deltas through Add; negative deltas must not
  // disturb the peak.
  ObjectCounter counter;
  counter.Add(10);
  counter.Add(-4);
  EXPECT_EQ(counter.current(), 6);
  EXPECT_EQ(counter.peak(), 10);
}

TEST(ObjectCounterTest, ResetClearsBoth) {
  ObjectCounter counter;
  counter.Add(7);
  counter.Reset();
  EXPECT_EQ(counter.current(), 0);
  EXPECT_EQ(counter.peak(), 0);
}

TEST(ObjectCounterTest, RemoveBelowZeroAssertsInDebug) {
#ifndef NDEBUG
  ObjectCounter counter;
  counter.Add(2);
  EXPECT_DEATH(counter.Remove(3), "current_");
#else
  GTEST_SKIP() << "assert compiled out in release builds";
#endif
}

TEST(EngineStatsTest, ResetClearsEverything) {
  EngineStats stats;
  stats.events_processed = 5;
  stats.outputs = 2;
  stats.work_units = 100;
  stats.objects.Add(3);
  stats.NoteBatch(4);
  stats.Reset();
  EXPECT_EQ(stats.events_processed, 0u);
  EXPECT_EQ(stats.outputs, 0u);
  EXPECT_EQ(stats.work_units, 0u);
  EXPECT_EQ(stats.objects.current(), 0);
  EXPECT_EQ(stats.objects.peak(), 0);
  EXPECT_EQ(stats.batches_processed, 0u);
  EXPECT_EQ(stats.max_batch_events, 0u);
}

TEST(EngineStatsTest, NoteBatchCountsAndTracksMax) {
  EngineStats stats;
  EXPECT_EQ(stats.batches_processed, 0u);
  EXPECT_EQ(stats.max_batch_events, 0u);
  stats.NoteBatch(16);
  stats.NoteBatch(256);
  stats.NoteBatch(3);  // a short tail batch must not lower the max
  EXPECT_EQ(stats.batches_processed, 3u);
  EXPECT_EQ(stats.max_batch_events, 256u);
}

TEST(StopWatchTest, MeasuresElapsedNonNegativeMonotone) {
  StopWatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  watch.Restart();
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(StopWatchTest, MillisMatchesSecondsScale) {
  StopWatch watch;
  // Burn a little time deterministically.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
  double seconds = watch.ElapsedSeconds();
  double millis = watch.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, seconds * 1e3 * 0.5 + 0.5);
}

}  // namespace
}  // namespace aseq
