#include <gtest/gtest.h>

#include "query/predicate.h"

namespace aseq {
namespace {

// --------------------------------------------------------------------------
// EvalCmp: full operator x value-kind matrix
// --------------------------------------------------------------------------

TEST(EvalCmpTest, IntegerComparisons) {
  Value a(3), b(5);
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, a, b));
  EXPECT_FALSE(EvalCmp(CmpOp::kGt, a, b));
  EXPECT_FALSE(EvalCmp(CmpOp::kGe, a, b));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, a, a));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, a, a));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, a, a));
}

TEST(EvalCmpTest, MixedNumericComparisons) {
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Value(3), Value(3.0)));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value(3), Value(3.5)));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, Value(3.5), Value(3)));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, Value(3.0), Value(3)));
}

TEST(EvalCmpTest, StringComparisons) {
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Value("abc"), Value("abc")));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Value("abc"), Value("abd")));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, Value("b"), Value("a")));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, Value("b"), Value("a")));
}

TEST(EvalCmpTest, UnorderedKindsOnlyNotEqual) {
  // String vs number: every relational operator is false except !=.
  Value s("5"), n(5);
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, s, n));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, s, n));
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
    EXPECT_FALSE(EvalCmp(op, s, n)) << CmpOpToString(op);
    EXPECT_FALSE(EvalCmp(op, n, s)) << CmpOpToString(op);
  }
}

TEST(EvalCmpTest, NullSemantics) {
  Value null;
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, null, Value()));
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, null, Value(0)));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, null, Value(0)));
  // Null is unordered with everything, itself included.
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
    EXPECT_FALSE(EvalCmp(op, null, Value(1))) << CmpOpToString(op);
    EXPECT_FALSE(EvalCmp(op, null, Value())) << CmpOpToString(op);
  }
}

TEST(EvalCmpTest, LeGeAreNegationsOfStrictOpposites) {
  // For comparable values, a <= b iff !(b < a); exhaustively check a grid.
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) {
      Value a(x), b(y);
      EXPECT_EQ(EvalCmp(CmpOp::kLe, a, b), !EvalCmp(CmpOp::kLt, b, a));
      EXPECT_EQ(EvalCmp(CmpOp::kGe, a, b), !EvalCmp(CmpOp::kGt, b, a));
      EXPECT_EQ(EvalCmp(CmpOp::kLt, a, b), EvalCmp(CmpOp::kGt, b, a));
    }
  }
}

// --------------------------------------------------------------------------
// Rendering
// --------------------------------------------------------------------------

TEST(PredicateRenderTest, OperatorNames) {
  EXPECT_STREQ(CmpOpToString(CmpOp::kEq), "=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kNe), "!=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kLt), "<");
  EXPECT_STREQ(CmpOpToString(CmpOp::kLe), "<=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kGt), ">");
  EXPECT_STREQ(CmpOpToString(CmpOp::kGe), ">=");
}

TEST(PredicateRenderTest, OperandAndComparisonToString) {
  Comparison cmp;
  cmp.lhs = Operand::AttrRef("Kindle", "model");
  cmp.op = CmpOp::kEq;
  cmp.rhs = Operand::Literal(Value("touch"));
  EXPECT_EQ(cmp.ToString(), "Kindle.model = 'touch'");

  Comparison numeric;
  numeric.lhs = Operand::AttrRef("A", "x");
  numeric.op = CmpOp::kLt;
  numeric.rhs = Operand::Literal(Value(5));
  EXPECT_EQ(numeric.ToString(), "A.x < 5");

  WhereClause where;
  where.terms = {cmp, numeric};
  EXPECT_EQ(where.ToString(), "Kindle.model = 'touch' AND A.x < 5");
  EXPECT_FALSE(where.empty());
  EXPECT_TRUE(WhereClause{}.empty());
}

}  // namespace
}  // namespace aseq
