// The supervised sharded runtime: injected worker crashes and stalls are
// detected by the watchdog, the failed shard alone is rebuilt from its
// recovery point and its routed slice replayed, and the merged outputs and
// stats stay bit-exact with the unfailed serial run. Overload policies:
// degrade-serial drains and stays exact; shed drops whole partitions
// deterministically, with surviving partitions exact against a filtered
// serial oracle and shed_* counters matching the drop counts exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "exec/execution_policy.h"
#include "exec/shard_router.h"
#include "fault/fault.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

constexpr size_t kShards = 3;
constexpr size_t kBatchSize = 64;
const char* kQuery =
    "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms";

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::Global().Disarm(); }
  void TearDown() override { fault::Injector::Global().Disarm(); }
};

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].ts, got[i].ts) << context << " output#" << i;
    EXPECT_EQ(ref[i].seq, got[i].seq) << context << " output#" << i;
    ASSERT_EQ(ref[i].group.has_value(), got[i].group.has_value())
        << context << " output#" << i;
    if (ref[i].group.has_value()) {
      EXPECT_TRUE(ref[i].group->Equals(*got[i].group))
          << context << " output#" << i;
    }
    EXPECT_TRUE(ref[i].value.Equals(got[i].value))
        << context << " output#" << i << ": " << ref[i].value.ToString()
        << " vs " << got[i].value.ToString();
  }
}

std::unique_ptr<exec::ExecutionPolicy> MustMakeSharded(
    const CompiledQuery& cq, const RunOptions& options) {
  std::string reason;
  auto policy = exec::MakePolicy(
      cq, [&cq] { return CreateAseqEngine(cq); }, options, &reason);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_TRUE(reason.empty()) << reason;
  return std::move(policy).value();
}

RunOptions SupervisedOptions() {
  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.supervise = true;
  options.recovery_every = 512;
  return options;
}

/// Arms `spec`, runs the supervised sharded executor over a fresh stock
/// case, and requires bit-exact equivalence with the unfailed serial run
/// plus at least `min_restarts` supervised restarts.
void CheckSupervisedEquivalence(const std::string& spec, uint64_t seed,
                                size_t min_restarts,
                                const std::string& label,
                                double watchdog_timeout_ms = 1000) {
  auto c = MakeStock(777, 3000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);

  auto ref_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  RunOptions options = SupervisedOptions();
  options.watchdog_timeout_ms = watchdog_timeout_ms;
  auto policy = MustMakeSharded(cq, options);
  if (!spec.empty()) {
    ASSERT_TRUE(fault::Injector::Global().Arm(spec, seed).ok()) << spec;
  }
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();

  ASSERT_TRUE(run.fault_status.ok()) << label << ": "
                                     << run.fault_status.ToString();
  EXPECT_EQ(run.events, c->events.size()) << label;
  ExpectOutputsEqual(ref.outputs, run.outputs, label);
  const EngineStats& stats = policy->stats();
  EXPECT_EQ(ref_engine->stats().events_processed, stats.events_processed)
      << label;
  EXPECT_EQ(ref_engine->stats().outputs, stats.outputs) << label;
  EXPECT_EQ(ref_engine->stats().work_units, stats.work_units) << label;
  EXPECT_EQ(ref_engine->stats().objects.peak(), stats.objects.peak())
      << label;
  EXPECT_EQ(ref_engine->stats().objects.current(), stats.objects.current())
      << label;
  EXPECT_GE(stats.fault_restarts, min_restarts) << label;
  if (min_restarts > 0) {
    EXPECT_GE(stats.fault_injected, 1u) << label;
  }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST_F(SupervisorTest, CrashedShardRestartsBitExact) {
  CheckSupervisedEquivalence("worker.op@1:200:crash", 7, 1, "crash-early");
}

TEST_F(SupervisorTest, CrashAfterRecoveryPointReplaysOnlyTheSlice) {
  // Shard 2 owns roughly a third of the 3000 events; op 900 lands late in
  // its lane, past several 512-event recovery barriers, so the restart
  // replays from a mid-stream snapshot, not from scratch.
  CheckSupervisedEquivalence("worker.op@2:900:crash", 7, 1, "crash-late");
}

TEST_F(SupervisorTest, MultipleShardsCrashIndependently) {
  CheckSupervisedEquivalence(
      "worker.op@0:150:crash,worker.op@2:400:crash,worker.op@1:700:crash", 7,
      3, "multi-crash");
}

TEST_F(SupervisorTest, StalledShardIsQuarantinedAndRestarted) {
  // The stalled worker stops heartbeating with work outstanding; a short
  // watchdog timeout keeps the test fast.
  CheckSupervisedEquivalence("worker.op@1:300:stall", 7, 1, "stall",
                             /*watchdog_timeout_ms=*/50);
}

TEST_F(SupervisorTest, SlowShardIsNotMistakenForStalled) {
  // Slow ops keep heartbeating between delays — the watchdog must not
  // fire on a shard that is merely behind.
  auto c = MakeStock(778, 2000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);
  auto ref_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());

  RunOptions options = SupervisedOptions();
  auto policy = MustMakeSharded(cq, options);
  ASSERT_TRUE(
      fault::Injector::Global().Arm("worker.op@1:100:slow:512", 7).ok());
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();

  ASSERT_TRUE(run.fault_status.ok()) << run.fault_status.ToString();
  ExpectOutputsEqual(ref.outputs, run.outputs, "slow");
  EXPECT_EQ(policy->stats().fault_restarts, 0u);
  EXPECT_GE(policy->stats().fault_injected, 1u);
}

TEST_F(SupervisorTest, SupervisedCleanRunIsExactWithZeroRestarts) {
  CheckSupervisedEquivalence("", 0, 0, "clean");
}

TEST_F(SupervisorTest, ExhaustedRestartBudgetAbortsTheRun) {
  auto c = MakeStock(779, 2000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);
  RunOptions options = SupervisedOptions();
  options.max_restarts = 3;
  auto policy = MustMakeSharded(cq, options);
  // Every hit of shard 1 from 50 on crashes: each restart's replay dies
  // immediately, so the budget runs out and the run aborts with a status
  // instead of looping forever.
  ASSERT_TRUE(
      fault::Injector::Global().Arm("worker.op@1:50:crash:100000000", 7).ok());
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();

  ASSERT_FALSE(run.fault_status.ok());
  EXPECT_NE(run.fault_status.ToString().find("restart budget"),
            std::string::npos)
      << run.fault_status.ToString();
  EXPECT_GE(policy->stats().fault_restarts, 4u);  // 3 allowed + the fatal one
}

// ---------------------------------------------------------------------------
// Overload control
// ---------------------------------------------------------------------------

TEST_F(SupervisorTest, DegradeSerialDrainsAndStaysExact) {
  auto c = MakeStock(780, 3000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);
  auto ref_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());

  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.overload_policy = OverloadPolicy::kDegradeSerial;
  auto policy = MustMakeSharded(cq, options);
  // Injected overload signals stand in for a queue at its high-watermark,
  // so the policy engages deterministically without real load.
  ASSERT_TRUE(
      fault::Injector::Global().Arm("router.route:100:overload:50", 7).ok());
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();

  ASSERT_TRUE(run.fault_status.ok()) << run.fault_status.ToString();
  ExpectOutputsEqual(ref.outputs, run.outputs, "degrade-serial");
  EXPECT_GE(policy->stats().overload_stalls, 1u);
  EXPECT_EQ(policy->stats().shed_events, 0u);
}

TEST_F(SupervisorTest, ShedDropsWholePartitionsExactly) {
  auto c = MakeStock(781, 3000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);

  // Pick an injection trigger that lands on a keyed event: replicate the
  // router's hit sequence (disarmed — replica hits must not advance the
  // real run's counters) and take the first keyed hit at or after 200.
  uint64_t trigger = 0;
  {
    exec::ShardRouter probe(cq, kShards);
    uint64_t hit = 0;
    for (Event e : c->events) {
      ++hit;
      if (probe.RouteEvent(e).has_key && hit >= 200) {
        trigger = hit;
        break;
      }
    }
  }
  ASSERT_GT(trigger, 0u) << "no keyed event in the stream";

  // Shed run. Lift the depth watermark out of reach so the only overload
  // signal is the injected one — organic backlog (a fast router against a
  // bounded queue) would otherwise shed timing-dependent partitions and
  // make the oracle below unpredictable.
  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.overload_policy = OverloadPolicy::kShed;
  options.overload_high_watermark = 1u << 30;
  auto policy = MustMakeSharded(cq, options);
  ASSERT_TRUE(fault::Injector::Global()
                  .Arm("router.route:" + std::to_string(trigger) +
                           ":overload:1",
                       7)
                  .ok());
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();
  ASSERT_TRUE(run.fault_status.ok()) << run.fault_status.ToString();
  // Shed events still consumed their arrival seq, so the event count is
  // the full stream's.
  EXPECT_EQ(run.events, c->events.size());

  // Oracle: replay the router's exact decision sequence to derive the
  // surviving stream (original seqs preserved), then run it serially.
  // Shed events carry no purge markers — every event of a partition
  // belongs to exactly one group and engines purge on arrival, so the
  // filtered serial run is the exact expectation.
  std::unordered_set<uint32_t> shed_keys;
  std::vector<Event> surviving;
  uint64_t expected_shed_events = 0;
  uint64_t expected_shed_partitions = 0;
  {
    exec::ShardRouter replica(cq, kShards);
    uint64_t hit = 0;
    for (const Event& e : c->events) {
      ++hit;
      Event stamped = e;
      stamped.set_seq(hit - 1);  // the executor assigns arrival order
      const exec::ShardRouter::Route route = replica.RouteEvent(stamped);
      if (route.has_key) {
        if (shed_keys.count(route.key_id) != 0) {
          ++expected_shed_events;
          continue;
        }
        if (hit == trigger) {
          shed_keys.insert(route.key_id);
          ++expected_shed_partitions;
          ++expected_shed_events;
          continue;
        }
      }
      surviving.push_back(stamped);
    }
  }
  ASSERT_EQ(expected_shed_partitions, 1u);
  ASSERT_GT(expected_shed_events, 1u) << "trigger key must recur";

  EXPECT_EQ(policy->stats().shed_partitions, expected_shed_partitions);
  EXPECT_EQ(policy->stats().shed_events, expected_shed_events);

  // Serial oracle over the surviving events, seqs pre-assigned (engines
  // require strictly increasing seq, not contiguous).
  auto oracle_or = CreateAseqEngine(cq);
  ASSERT_TRUE(oracle_or.ok());
  std::unique_ptr<QueryEngine> oracle = std::move(oracle_or).value();
  std::vector<Output> oracle_outputs;
  std::vector<Output> scratch;
  for (size_t i = 0; i < surviving.size(); i += kBatchSize) {
    const size_t n = std::min(kBatchSize, surviving.size() - i);
    scratch.clear();
    oracle->OnBatch(std::span<const Event>(surviving.data() + i, n),
                    &scratch);
    oracle_outputs.insert(oracle_outputs.end(), scratch.begin(),
                          scratch.end());
  }
  ASSERT_GT(oracle_outputs.size(), 0u) << "vacuous surviving workload";
  ExpectOutputsEqual(oracle_outputs, run.outputs, "shed");
  EXPECT_EQ(oracle->stats().objects.peak(), policy->stats().objects.peak());
}

// ---------------------------------------------------------------------------
// Flag plumbing guards
// ---------------------------------------------------------------------------

TEST_F(SupervisorTest, SupervisionComposesWithCrashAndOverloadInjection) {
  // Supervision plus degrade-serial plus a crash in the same run: the
  // drain restarts the dead lane, and the result is still exact.
  auto c = MakeStock(782, 2500);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);
  auto ref_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());

  RunOptions options = SupervisedOptions();
  options.overload_policy = OverloadPolicy::kDegradeSerial;
  auto policy = MustMakeSharded(cq, options);
  ASSERT_TRUE(fault::Injector::Global()
                  .Arm("worker.op@1:300:crash,router.route:500:overload:20", 7)
                  .ok());
  RunResult run = policy->RunEvents(c->events);
  fault::Injector::Global().Disarm();

  ASSERT_TRUE(run.fault_status.ok()) << run.fault_status.ToString();
  ExpectOutputsEqual(ref.outputs, run.outputs, "compose");
  EXPECT_GE(policy->stats().fault_restarts, 1u);
  EXPECT_GE(policy->stats().overload_stalls, 1u);
}

TEST_F(SupervisorTest, StopDuringFullRingStallExitsPromptly) {
  // A stop request that arrives while the coordinator is parked on a full
  // lane ring (worker too slow to drain) must abort the park instead of
  // waiting for a drain that may never come: the run returns interrupted,
  // without a final checkpoint, and tears the workers down.
  auto c = MakeStock(783, 3000);
  CompiledQuery cq = MustCompile(&c->schema, kQuery);

  RunOptions options;
  options.num_shards = kShards;
  // A small batch multiplies items-per-lane so the throttled lane's ring
  // fills within milliseconds and stays full for the rest of the run.
  options.batch_size = 8;
  std::atomic<bool> stop{false};
  options.stop_requested = &stop;
  auto policy = MustMakeSharded(cq, options);
  // Every op on shard 0 sleeps 50-250us: draining one queued item takes
  // ~1ms while the router can publish hundreds of items per millisecond.
  ASSERT_TRUE(
      fault::Injector::Global().Arm("worker.op@0:1:slow:100000000", 7).ok());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true);
  });
  StopWatch watch;
  RunResult run = policy->RunEvents(c->events);
  const double elapsed = watch.ElapsedSeconds();
  stopper.join();
  fault::Injector::Global().Disarm();

  ASSERT_TRUE(run.fault_status.ok()) << run.fault_status.ToString();
  EXPECT_TRUE(run.interrupted);
  EXPECT_LT(run.events, c->events.size());
  // The throttled lane really did exert backpressure.
  EXPECT_GE(policy->stats().ring_full_waits, 1u);
  // Whole-stream drain at ~150us/op would take ~10x this bound even
  // unsanitized; a prompt stop is comfortably inside it.
  EXPECT_LT(elapsed, 10.0);
}

}  // namespace
}  // namespace aseq
