#include <gtest/gtest.h>

#include <cmath>

#include "baseline/cost_model.h"
#include "baseline/stack_engine.h"
#include "bench/bench_util.h"
#include "engine/runtime.h"
#include "query/analyzer.h"

namespace aseq {
namespace {

TEST(CostModelTest, UniformReducesToPowerLaw) {
  // With N instances per type and selectivity s, Eq. 3's dominant term is
  // N * (N*s)^(n-1).
  for (size_t n : {2u, 3u, 4u, 5u}) {
    double cost = StackCostModel::Uniform(n, 10.0, 0.5).Cost();
    double dominant = 10.0 * std::pow(10.0 * 0.5, n - 1);
    EXPECT_GE(cost, dominant);
    EXPECT_LE(cost, 2.5 * dominant);  // geometric series of lower terms
  }
}

TEST(CostModelTest, GrowthFactorPerAddedPosition) {
  // Each added pattern position multiplies the dominant cost by N*s.
  double c3 = StackCostModel::Uniform(3, 20.0).Cost();
  double c4 = StackCostModel::Uniform(4, 20.0).Cost();
  EXPECT_NEAR(c4 / c3, 20.0 * 0.5, 2.0);
}

TEST(CostModelTest, NonUniformCounts) {
  StackCostModel m;
  m.type_counts = {100, 1, 100};
  m.time_selectivities = {0.5, 0.5};
  // 100 + 1*(100*0.5) + 100*(100*0.5*1*0.5) = 100 + 50 + 2500.
  EXPECT_DOUBLE_EQ(m.Cost(), 2650.0);
}

TEST(CostModelTest, ASeqCostLinearAndLengthFree) {
  EXPECT_DOUBLE_EQ(StackCostModel::ASeqCost(1000, 20), 20000.0);
  // No pattern-length parameter exists — by construction.
}

TEST(CostModelTest, PredictsMeasuredGrowthWithinBand) {
  // Empirical sanity: the measured stack work_units growth when extending
  // the pattern from 3 to 4 types matches Eq. 3's N*s factor within a
  // generous band (the model is asymptotic; constants differ).
  auto stream = bench::MakeStockStream(3000, 8);
  // |E_i| per 1000ms window: ~ (1000ms / 4ms avg gap) / 10 types.
  const double instances = 1000.0 / 4.0 / 10.0;
  double measured[2];
  for (size_t l : {3u, 4u}) {
    Schema schema = stream->schema;
    Analyzer analyzer(&schema);
    auto cq = analyzer.Analyze(bench::MakeTickerQuery(l, 1000));
    StackEngine engine(*cq);
    Runtime::RunEvents(stream->events, &engine, false);
    measured[l - 3] = static_cast<double>(engine.stats().work_units);
  }
  double measured_factor = measured[1] / measured[0];
  double model_factor = StackCostModel::Uniform(4, instances).Cost() /
                        StackCostModel::Uniform(3, instances).Cost();
  EXPECT_GT(measured_factor, model_factor / 4);
  EXPECT_LT(measured_factor, model_factor * 4);
}

}  // namespace
}  // namespace aseq
