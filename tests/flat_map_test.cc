// FlatMap and SlabPool: the open-addressing index and slot-stable pool
// behind the HPC flat partition store. The scenarios mirror how the engine
// drives them — hashed probes staged ahead of use, erase-during-scan
// sweeps, tombstone churn, and exact geometry restore after a checkpoint.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash_mix.h"
#include "container/flat_map.h"
#include "container/slab_pool.h"

namespace aseq {
namespace container {
namespace {

// Sequential keys are the adversarial case for open addressing; route them
// through the avalanching finalizer like every production keyer does.
struct MixHash {
  uint64_t operator()(uint64_t k) const { return HashMix64(k); }
};

TEST(FlatMapTest, InsertFindGrowth) {
  FlatMap<uint64_t, uint64_t, MixHash> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    auto [value, inserted] = map.TryEmplace(i, i * 3);
    ASSERT_TRUE(inserted) << i;
    ASSERT_EQ(*value, i * 3);
  }
  EXPECT_EQ(map.size(), kN);
  // Power-of-two capacity with live load <= 7/8.
  EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
  EXPECT_LE(map.size() * 8, map.capacity() * 7);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t* v = map.Find(i);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i * 3);
  }
  EXPECT_EQ(map.Find(kN + 1), nullptr);
  // Re-emplacing an existing key returns the live slot, no insert.
  auto [value, inserted] = map.TryEmplace(7, 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*value, 21u);
}

TEST(FlatMapTest, HashedEntryPointsMatchConvenienceWrappers) {
  FlatMap<uint64_t, std::string, MixHash> map;
  const uint64_t h = MixHash{}(42);
  map.TryEmplaceHashed(h, 42, "hello");
  EXPECT_EQ(*map.Find(42), "hello");
  EXPECT_NE(map.FindHashed(h, 42), nullptr);
  EXPECT_TRUE(map.EraseHashed(h, 42));
  EXPECT_EQ(map.Find(42), nullptr);
}

TEST(FlatMapTest, EraseLeavesProbeChainsIntact) {
  // Colliding keys (identical hash) probe through each other's slots;
  // erasing the first must not hide the second behind an empty slot.
  struct ConstantHash {
    uint64_t operator()(uint64_t) const { return 0x1234; }
  };
  FlatMap<uint64_t, uint64_t, ConstantHash> map;
  for (uint64_t i = 0; i < 8; ++i) map.TryEmplace(i, i);
  EXPECT_TRUE(map.Erase(0));
  EXPECT_TRUE(map.Erase(3));
  for (uint64_t i = 0; i < 8; ++i) {
    if (i == 0 || i == 3) {
      EXPECT_EQ(map.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(map.Find(i), nullptr) << i;
    }
  }
  // Tombstones are reused by later inserts instead of extending the chain.
  map.TryEmplace(100, 100);
  ASSERT_NE(map.Find(100), nullptr);
  for (uint64_t i = 1; i < 8; ++i) {
    if (i != 3) ASSERT_NE(map.Find(i), nullptr) << i;
  }
}

TEST(FlatMapTest, ChurnDoesNotGrowUnbounded) {
  // Insert/erase churn at constant live size: tombstone-triggered rehashes
  // must fold tombstones away instead of doubling capacity forever.
  FlatMap<uint64_t, uint64_t, MixHash> map;
  for (uint64_t i = 0; i < 64; ++i) map.TryEmplace(i, i);
  const size_t steady_live = map.size();
  for (uint64_t round = 0; round < 10000; ++round) {
    ASSERT_TRUE(map.Erase(round));
    map.TryEmplace(round + 64, round);
    ASSERT_EQ(map.size(), steady_live);
  }
  // 64 live entries fit in a 128-slot table at 7/8 load; churn may leave
  // the table one growth step above, never more.
  EXPECT_LE(map.capacity(), 256u);
}

TEST(FlatMapTest, EraseDuringScan) {
  // The ScanTotal sweep pattern: visit every live entry once, erasing some
  // mid-scan via the iterator.
  FlatMap<uint64_t, uint64_t, MixHash> map;
  for (uint64_t i = 0; i < 1000; ++i) map.TryEmplace(i, i);
  size_t visited = 0;
  for (auto it = map.begin(); it != map.end();) {
    ++visited;
    if (it.value() % 3 == 0) {
      it = map.Erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(visited, 1000u);
  EXPECT_EQ(map.size(), 1000u - 334u);  // multiples of 3 in [0, 1000)
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.Find(i) != nullptr, i % 3 != 0) << i;
  }
}

TEST(FlatMapTest, ForEachVisitsEveryLiveEntryOnce) {
  FlatMap<uint64_t, uint64_t, MixHash> map;
  for (uint64_t i = 0; i < 500; ++i) map.TryEmplace(i, i * 2);
  for (uint64_t i = 0; i < 500; i += 2) map.Erase(i);
  std::unordered_map<uint64_t, uint64_t> seen;
  map.ForEach([&seen](const uint64_t& k, const uint64_t& v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit of " << k;
  });
  EXPECT_EQ(seen.size(), map.size());
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(k % 2, 1u);
    EXPECT_EQ(v, k * 2);
  }
}

TEST(FlatMapTest, ProbeCountersAdvance) {
  FlatMap<uint64_t, uint64_t, MixHash> map;
  map.TryEmplace(1, 1);
  const uint64_t probes_before = map.probes();
  const uint64_t steps_before = map.probe_steps();
  map.Find(1);
  map.Find(2);
  EXPECT_EQ(map.probes(), probes_before + 2);
  // Every probe inspects at least one control byte.
  EXPECT_GE(map.probe_steps(), steps_before + 2);
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<uint64_t, uint64_t, MixHash> map;
  for (uint64_t i = 0; i < 100; ++i) map.TryEmplace(i, i);
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(1), nullptr);
  map.TryEmplace(7, 7);
  EXPECT_EQ(*map.Find(7), 7u);
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<uint64_t, uint64_t, MixHash> map;
  map.Reserve(1000);
  const size_t cap = map.capacity();
  EXPECT_GE(cap * 7, 1000u * 8);
  for (uint64_t i = 0; i < 1000; ++i) map.TryEmplace(i, i);
  EXPECT_EQ(map.capacity(), cap);
}

// ---------------------------------------------------------------------------
// SlabPool
// ---------------------------------------------------------------------------

struct Tracked {
  explicit Tracked(int v) : value(v) { ++alive; }
  ~Tracked() { --alive; }
  int value;
  static int alive;
};
int Tracked::alive = 0;

TEST(SlabPoolTest, EmplaceFreeReuseLifo) {
  SlabPool<Tracked, 4> pool;
  std::vector<uint32_t> slots;
  for (int i = 0; i < 10; ++i) slots.push_back(pool.Emplace(i));
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_EQ(pool.end(), 10u);
  EXPECT_EQ(Tracked::alive, 10);
  // Slots are dense append order.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(slots[static_cast<size_t>(i)], static_cast<uint32_t>(i));
    EXPECT_EQ(pool.at(slots[static_cast<size_t>(i)]).value, i);
  }
  pool.Free(3);
  pool.Free(7);
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_FALSE(pool.live(3));
  EXPECT_FALSE(pool.live(7));
  // LIFO: the most recently freed slot is reused first, and the
  // high-water mark does not grow while the freelist is non-empty.
  EXPECT_EQ(pool.Emplace(70), 7u);
  EXPECT_EQ(pool.Emplace(30), 3u);
  EXPECT_EQ(pool.end(), 10u);
  EXPECT_EQ(pool.Emplace(99), 10u);
  EXPECT_EQ(pool.end(), 11u);
  pool.Clear();
  EXPECT_EQ(Tracked::alive, 0);
  EXPECT_EQ(pool.end(), 0u);
}

TEST(SlabPoolTest, AddressesStableAcrossGrowth) {
  SlabPool<Tracked, 4> pool;
  const uint32_t first = pool.Emplace(42);
  Tracked* addr = &pool.at(first);
  for (int i = 0; i < 1000; ++i) pool.Emplace(i);
  EXPECT_EQ(&pool.at(first), addr);
  EXPECT_EQ(pool.at(first).value, 42);
  pool.Clear();
}

TEST(SlabPoolTest, GeometryRestoreRoundTrip) {
  // Build a pool with history (freed slots, non-trivial freelist order),
  // capture its geometry, rebuild, and verify the rebuilt pool assigns
  // future slots identically — the property engine restore depends on.
  SlabPool<Tracked, 4> pool;
  for (int i = 0; i < 9; ++i) pool.Emplace(i);
  pool.Free(2);
  pool.Free(5);
  pool.Free(1);

  const uint32_t end = pool.end();
  std::vector<uint32_t> live_slots;
  for (uint32_t s = 0; s < end; ++s) {
    if (pool.live(s)) live_slots.push_back(s);
  }
  const std::vector<uint32_t> freelist = pool.freelist();

  SlabPool<Tracked, 4> restored;
  restored.ResetGeometry(end);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.end(), end);
  for (uint32_t s : live_slots) {
    restored.EmplaceAt(s, pool.at(s).value);
  }
  restored.RestoreFreelist(freelist);
  EXPECT_EQ(restored.size(), pool.size());
  for (uint32_t s = 0; s < end; ++s) {
    ASSERT_EQ(restored.live(s), pool.live(s)) << s;
    if (pool.live(s)) EXPECT_EQ(restored.at(s).value, pool.at(s).value);
  }
  // Identical future slot assignment: freelist LIFO, then append.
  EXPECT_EQ(pool.Emplace(100), restored.Emplace(100));
  EXPECT_EQ(pool.Emplace(101), restored.Emplace(101));
  EXPECT_EQ(pool.Emplace(102), restored.Emplace(102));
  EXPECT_EQ(pool.Emplace(103), restored.Emplace(103));  // appends at end
  pool.Clear();
  restored.Clear();
  EXPECT_EQ(Tracked::alive, 0);
}

}  // namespace
}  // namespace container
}  // namespace aseq
