#include <gtest/gtest.h>

#include "aseq/counter_set.h"
#include "aseq/prefix_counter.h"

namespace aseq {
namespace {

// --------------------------------------------------------------------------
// PrefixCounter: Lemma 1 recurrence
// --------------------------------------------------------------------------

TEST(PrefixCounterTest, SingleSequence) {
  PrefixCounter pc(3, AggFunc::kCount, 0);
  EXPECT_EQ(pc.Tail().count, 0u);
  pc.ApplyPositive(1);
  pc.ApplyPositive(2);
  pc.ApplyPositive(3);
  EXPECT_EQ(pc.count_at(1), 1u);
  EXPECT_EQ(pc.count_at(2), 1u);
  EXPECT_EQ(pc.Tail().count, 1u);
}

TEST(PrefixCounterTest, PaperFigure4Example) {
  // Fig. 4: pattern (A, B, C, D). Build the column state (3, 2, 1, 1) via
  // the arrival sequence a b c d b a a.
  PrefixCounter pc(4, AggFunc::kCount, 0);
  pc.ApplyPositive(1);  // a
  pc.ApplyPositive(2);  // b
  pc.ApplyPositive(3);  // c
  pc.ApplyPositive(4);  // d
  pc.ApplyPositive(2);  // b
  pc.ApplyPositive(1);  // a
  pc.ApplyPositive(1);  // a
  EXPECT_EQ(pc.count_at(1), 3u);
  EXPECT_EQ(pc.count_at(2), 2u);
  EXPECT_EQ(pc.count_at(3), 1u);
  EXPECT_EQ(pc.count_at(4), 1u);
  // "When event instance b arrives ... add the existing counts of (A) = 3
  //  and (A, B) = 2 to get the new count of (A, B) = 5."
  pc.ApplyPositive(2);
  EXPECT_EQ(pc.count_at(2), 5u);
  EXPECT_EQ(pc.count_at(1), 3u);  // all other prefixes unchanged
  EXPECT_EQ(pc.count_at(3), 1u);
  // "Similarly, when the instance d arrives ... (A,B,C,D) = 1 + 1 = 2."
  pc.ApplyPositive(4);
  EXPECT_EQ(pc.count_at(4), 2u);
}

TEST(PrefixCounterTest, RecountingRuleResetsOnlyTheAdjacentPrefix) {
  // Fig. 7: pattern (A, B, !C, D) — prefix counter over positives (A, B, D).
  // Arrival order: a1 a2 b1 c1 b2 d1 => 2 matches (a1,b2,d1), (a2,b2,d1).
  PrefixCounter pc(3, AggFunc::kCount, 0);
  pc.ApplyPositive(1);  // a1
  pc.ApplyPositive(1);  // a2
  pc.ApplyPositive(2);  // b1 -> (A,B) = 2
  EXPECT_EQ(pc.count_at(2), 2u);
  pc.ResetPrefix(2);  // c1 invalidates the Longest Positive Prefix Sequences
  EXPECT_EQ(pc.count_at(1), 2u);  // (A) kept
  EXPECT_EQ(pc.count_at(2), 0u);  // (A,B) cleared
  EXPECT_EQ(pc.count_at(3), 0u);  // (A,B,D) kept (still 0 here)
  pc.ApplyPositive(2);            // b2 -> (A,B) = 2 again
  pc.ApplyPositive(3);            // d1
  EXPECT_EQ(pc.Tail().count, 2u);
}

TEST(PrefixCounterTest, DuplicateTypeDescendingUpdateOrder) {
  // Pattern (A, A): each arrival applies position 2 then position 1.
  PrefixCounter pc(2, AggFunc::kCount, 0);
  for (int i = 0; i < 4; ++i) {
    pc.ApplyPositive(2);
    pc.ApplyPositive(1);
  }
  // Matches = pairs (a_i, a_j), i<j = C(4,2) = 6.
  EXPECT_EQ(pc.Tail().count, 6u);
}

TEST(PrefixCounterTest, LengthOne) {
  PrefixCounter pc(1, AggFunc::kCount, 0);
  pc.ApplyPositive(1);
  pc.ApplyPositive(1);
  EXPECT_EQ(pc.Tail().count, 2u);
}

TEST(PrefixCounterTest, ToStringRendersCounts) {
  PrefixCounter pc(2, AggFunc::kCount, 0);
  pc.ApplyPositive(1);
  EXPECT_EQ(pc.ToString(), "[1 0]");
}

// --------------------------------------------------------------------------
// Weighted counting (SUM/AVG, Sec. 5)
// --------------------------------------------------------------------------

TEST(PrefixCounterTest, SumTracksWeightedMatches) {
  // Pattern (A, B, C), SUM over B.w (carrier position 2).
  PrefixCounter pc(3, AggFunc::kSum, 2);
  pc.ApplyPositive(1);        // a1
  pc.ApplyPositive(1);        // a2
  pc.ApplyPositive(2, 10.0);  // b1: extends 2 prefixes -> wsum = 20
  pc.ApplyPositive(2, 5.0);   // b2: extends 2 prefixes -> wsum = 30
  pc.ApplyPositive(3);        // c1: all 4 (A,B) matches complete
  AggAccum acc = pc.Tail();
  EXPECT_EQ(acc.count, 4u);
  // Matches: (a1,b1,c1)=10 (a2,b1,c1)=10 (a1,b2,c1)=5 (a2,b2,c1)=5.
  EXPECT_DOUBLE_EQ(acc.sum, 30.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggFunc::kSum).AsDouble(), 30.0);
}

TEST(PrefixCounterTest, SumNonUniformExtension) {
  // The case where the paper's proportional-scaling sketch would be
  // inexact: prefixes extend to different numbers of full matches.
  // Pattern (A, B), SUM over A.v.
  PrefixCounter pc(2, AggFunc::kSum, 1);
  pc.ApplyPositive(1, 100.0);  // a1
  pc.ApplyPositive(2);         // b1: match (a1,b1) -> sum 100
  pc.ApplyPositive(1, 1.0);    // a2
  pc.ApplyPositive(2);         // b2: matches (a1,b2), (a2,b2) -> +101
  AggAccum acc = pc.Tail();
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.sum, 201.0);  // a1 participates twice, a2 once
}

TEST(PrefixCounterTest, AvgFinalize) {
  PrefixCounter pc(2, AggFunc::kAvg, 1);
  pc.ApplyPositive(1, 4.0);
  pc.ApplyPositive(1, 8.0);
  pc.ApplyPositive(2);
  AggAccum acc = pc.Tail();
  EXPECT_EQ(acc.count, 2u);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggFunc::kAvg).AsDouble(), 6.0);
  // AVG over the empty match set is null.
  PrefixCounter empty(2, AggFunc::kAvg, 1);
  EXPECT_TRUE(empty.Tail().Finalize(AggFunc::kAvg).is_null());
}

TEST(PrefixCounterTest, SumResetByNegation) {
  // Pattern (A, !X, B), SUM over A.v.
  PrefixCounter pc(2, AggFunc::kSum, 1);
  pc.ApplyPositive(1, 7.0);
  pc.ResetPrefix(1);           // X arrives: (A) invalidated, weight too
  pc.ApplyPositive(2);         // b: no matches
  EXPECT_EQ(pc.Tail().count, 0u);
  EXPECT_DOUBLE_EQ(pc.Tail().sum, 0.0);
  pc.ApplyPositive(1, 3.0);    // a2 after the negation
  pc.ApplyPositive(2);         // b2: match (a2, b2)
  EXPECT_EQ(pc.Tail().count, 1u);
  EXPECT_DOUBLE_EQ(pc.Tail().sum, 3.0);
}

// --------------------------------------------------------------------------
// Extremal counting (MIN/MAX, Sec. 5)
// --------------------------------------------------------------------------

TEST(PrefixCounterTest, MaxOverMatches) {
  // Pattern (A, B, C), MAX over B.w.
  PrefixCounter pc(3, AggFunc::kMax, 2);
  EXPECT_FALSE(pc.Tail().has_ext);
  pc.ApplyPositive(2, 99.0);  // b with no (A) prefix: participates in nothing
  pc.ApplyPositive(1);        // a1
  pc.ApplyPositive(2, 10.0);  // b1
  pc.ApplyPositive(2, 30.0);  // b2
  pc.ApplyPositive(3);        // c1
  AggAccum acc = pc.Tail();
  ASSERT_TRUE(acc.has_ext);
  EXPECT_DOUBLE_EQ(acc.ext, 30.0);  // the orphan 99 never formed a match
  EXPECT_DOUBLE_EQ(acc.Finalize(AggFunc::kMax).AsDouble(), 30.0);
}

TEST(PrefixCounterTest, MinOverMatches) {
  PrefixCounter pc(2, AggFunc::kMin, 2);
  pc.ApplyPositive(1);
  pc.ApplyPositive(2, 5.0);
  pc.ApplyPositive(2, 3.0);
  pc.ApplyPositive(2, 9.0);
  AggAccum acc = pc.Tail();
  ASSERT_TRUE(acc.has_ext);
  EXPECT_DOUBLE_EQ(acc.ext, 3.0);
  EXPECT_TRUE(PrefixCounter(2, AggFunc::kMin, 2)
                  .Tail()
                  .Finalize(AggFunc::kMin)
                  .is_null());
}

TEST(PrefixCounterTest, MaxResetByNegation) {
  // Pattern (A, B, !X, C), MAX over B.w; positives (A, B, C).
  PrefixCounter pc(3, AggFunc::kMax, 2);
  pc.ApplyPositive(1);
  pc.ApplyPositive(2, 50.0);
  pc.ResetPrefix(2);          // X: (A,B) matches invalidated
  pc.ApplyPositive(2, 20.0);  // new b after the negation
  pc.ApplyPositive(3);        // c
  AggAccum acc = pc.Tail();
  ASSERT_TRUE(acc.has_ext);
  EXPECT_DOUBLE_EQ(acc.ext, 20.0);  // 50 died with the reset
}

// --------------------------------------------------------------------------
// AggAccum merging
// --------------------------------------------------------------------------

TEST(AggAccumTest, MergeCombines) {
  AggAccum a, b;
  a.count = 2;
  a.sum = 5;
  a.has_ext = true;
  a.ext = 7;
  b.count = 3;
  b.sum = 10;
  b.has_ext = true;
  b.ext = 4;
  AggAccum max = a;
  max.Merge(b, AggFunc::kMax);
  EXPECT_EQ(max.count, 5u);
  EXPECT_DOUBLE_EQ(max.sum, 15.0);
  EXPECT_DOUBLE_EQ(max.ext, 7.0);
  AggAccum min = a;
  min.Merge(b, AggFunc::kMin);
  EXPECT_DOUBLE_EQ(min.ext, 4.0);
  AggAccum from_empty;
  from_empty.Merge(b, AggFunc::kMin);
  EXPECT_TRUE(from_empty.has_ext);
  EXPECT_DOUBLE_EQ(from_empty.ext, 4.0);
}

TEST(AggAccumTest, FinalizeCount) {
  AggAccum acc;
  acc.count = 9;
  EXPECT_EQ(acc.Finalize(AggFunc::kCount).AsInt64(), 9);
  EXPECT_DOUBLE_EQ(AggAccum{}.Finalize(AggFunc::kSum).AsDouble(), 0.0);
}

// --------------------------------------------------------------------------
// CounterSet: DPC (unbounded) vs SEM (windowed)
// --------------------------------------------------------------------------

TEST(CounterSetTest, UnboundedModeUsesOneCounter) {
  EngineStats stats;
  CounterSet set(3, AggFunc::kCount, 0, 0, &stats);
  Event a(0, 10);
  set.OnStart(a);
  set.OnStart(a);
  set.ApplyUpdate(2);
  set.ApplyUpdate(3);
  EXPECT_EQ(set.num_counters(), 1u);
  EXPECT_EQ(set.Total().count, 2u);
  set.Purge(1000000);  // no-op without a window
  EXPECT_EQ(set.Total().count, 2u);
  EXPECT_EQ(stats.objects.peak(), 1);
}

TEST(CounterSetTest, WindowedModeCreatesPerStartCounters) {
  EngineStats stats;
  CounterSet set(2, AggFunc::kCount, 0, 100, &stats);
  Event a1(0, 10);
  Event a2(0, 50);
  set.OnStart(a1);
  set.OnStart(a2);
  EXPECT_EQ(set.num_counters(), 2u);
  set.ApplyUpdate(2);
  EXPECT_EQ(set.Total().count, 2u);
  // a1 expires at 110.
  set.Purge(109);
  EXPECT_EQ(set.num_counters(), 2u);
  set.Purge(110);
  EXPECT_EQ(set.num_counters(), 1u);
  EXPECT_EQ(set.Total().count, 1u);
  set.Purge(150);
  EXPECT_EQ(set.num_counters(), 0u);
  EXPECT_EQ(set.Total().count, 0u);
  EXPECT_EQ(stats.objects.peak(), 2);
  EXPECT_EQ(stats.objects.current(), 0);
}

TEST(CounterSetTest, ResetPrefixHitsEveryCounter) {
  EngineStats stats;
  CounterSet set(3, AggFunc::kCount, 0, 1000, &stats);
  Event a1(0, 1), a2(0, 2);
  set.OnStart(a1);
  set.OnStart(a2);
  set.ApplyUpdate(2);
  set.ResetPrefix(2);
  set.ApplyUpdate(3);
  EXPECT_EQ(set.Total().count, 0u);
  set.ApplyUpdate(2);
  set.ApplyUpdate(3);
  EXPECT_EQ(set.Total().count, 2u);
}

TEST(CounterSetTest, WorkUnitsScaleWithLiveCounters) {
  EngineStats stats;
  CounterSet set(2, AggFunc::kCount, 0, 1000, &stats);
  Event a(0, 1);
  set.OnStart(a);
  set.OnStart(a);
  uint64_t before = stats.work_units;
  set.ApplyUpdate(2);
  EXPECT_EQ(stats.work_units - before, 2u);
}

}  // namespace
}  // namespace aseq
