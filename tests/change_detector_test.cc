#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "engine/change_detector.h"
#include "engine/runtime.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

TEST(ChangeDetectorTest, EmitsOnExpirationDrop) {
  // Example 1's ending: when b6 arrives and a1 is purged, "the count is
  // updated to zero" — an output with no TRIG instance involved.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C) WITHIN 5s");
  auto inner = CreateAseqEngine(cq);
  ChangeDetectingEngine engine(std::move(*inner));
  EXPECT_EQ(engine.name(), "A-Seq(SEM)+OnChange");

  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("B", 2000)
                                  .Add("C", 3000)  // count -> 1
                                  .Add("C", 4000)  // count -> 2
                                  .Add("B", 6000)  // a1 expires: count -> 0
                                  .Build();
  RunResult result = Runtime::RunEvents(events, &engine);
  ASSERT_EQ(result.outputs.size(), 3u);
  EXPECT_EQ(CountOf(result.outputs[0]), 1);
  EXPECT_EQ(result.outputs[0].ts, 3000);
  EXPECT_EQ(CountOf(result.outputs[1]), 2);
  EXPECT_EQ(CountOf(result.outputs[2]), 0);
  EXPECT_EQ(result.outputs[2].ts, 6000);  // reported at the purge
}

TEST(ChangeDetectorTest, NoOutputWhenValueUnchanged) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto inner = CreateAseqEngine(cq);
  ChangeDetectingEngine engine(std::move(*inner));
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("B", 2000)  // count -> 1
                                  .Add("Z", 3000)  // irrelevant: unchanged
                                  .Add("Z", 4000)
                                  .Build();
  RunResult result = Runtime::RunEvents(events, &engine);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(CountOf(result.outputs[0]), 1);
}

TEST(ChangeDetectorTest, TrackedPerGroup) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY g AGG COUNT WITHIN 10s");
  auto inner = CreateAseqEngine(cq);
  ChangeDetectingEngine engine(std::move(*inner));
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"g", Value("x")}})
                                  .Add("A", 1500, {{"g", Value("y")}})
                                  .Add("B", 2000, {{"g", Value("x")}})
                                  .Add("B", 3000, {{"g", Value("y")}})
                                  .Add("B", 4000, {{"g", Value("y")}})
                                  .Build();
  RunResult result = Runtime::RunEvents(events, &engine);
  // Changes: x -> 1, y -> 1, y -> 2.
  ASSERT_EQ(result.outputs.size(), 3u);
  EXPECT_TRUE(result.outputs[0].group->Equals(Value("x")));
  EXPECT_EQ(CountOf(result.outputs[0]), 1);
  EXPECT_TRUE(result.outputs[1].group->Equals(Value("y")));
  EXPECT_EQ(CountOf(result.outputs[1]), 1);
  EXPECT_TRUE(result.outputs[2].group->Equals(Value("y")));
  EXPECT_EQ(CountOf(result.outputs[2]), 2);
}

TEST(ChangeDetectorTest, InitialZeroIsTheBaselineNotAChange) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto inner = CreateAseqEngine(cq);
  ChangeDetectingEngine engine(std::move(*inner));
  std::vector<Event> events =
      StreamBuilder(&schema).Add("Z", 1000).Add("Z", 2000).Build();
  RunResult result = Runtime::RunEvents(events, &engine);
  EXPECT_TRUE(result.outputs.empty());
}

}  // namespace
}  // namespace aseq
