#include <gtest/gtest.h>

#include <algorithm>

#include "aseq/aseq_engine.h"
#include "common/rng.h"
#include "engine/reordering_engine.h"
#include "engine/runtime.h"
#include "multi/nonshared_engine.h"
#include "query/analyzer.h"
#include "stream/reorder.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

// --------------------------------------------------------------------------
// KSlackReorderer
// --------------------------------------------------------------------------

TEST(KSlackReordererTest, ReordersWithinSlack) {
  KSlackReorderer reorderer(100);
  std::vector<Event> out;
  reorderer.Push(Event(0, 50), &out);
  reorderer.Push(Event(1, 10), &out);   // late but within slack
  EXPECT_TRUE(out.empty());             // watermark = -50: nothing releasable
  reorderer.Push(Event(2, 200), &out);  // watermark -> 100: releases 10, 50
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].ts(), 10);
  EXPECT_EQ(out[1].ts(), 50);
  reorderer.Flush(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].ts(), 200);
  EXPECT_EQ(reorderer.dropped(), 0u);
}

TEST(KSlackReordererTest, DropsBeyondSlack) {
  KSlackReorderer reorderer(50);
  std::vector<Event> out;
  reorderer.Push(Event(0, 1000), &out);
  reorderer.Push(Event(1, 100), &out);  // 900ms late with 50ms slack
  EXPECT_EQ(reorderer.dropped(), 1u);
  reorderer.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts(), 1000);
}

TEST(KSlackReordererTest, StableForEqualTimestamps) {
  KSlackReorderer reorderer(10);
  std::vector<Event> out;
  Event a(7, 100), b(8, 100);
  reorderer.Push(a, &out);
  reorderer.Push(b, &out);
  reorderer.Flush(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type(), 7u);  // arrival order preserved on ties
  EXPECT_EQ(out[1].type(), 8u);
}

TEST(KSlackReordererTest, ZeroSlackPassesInOrderStreamsThrough) {
  KSlackReorderer reorderer(0);
  std::vector<Event> out;
  for (Timestamp t : {10, 20, 30}) reorderer.Push(Event(0, t), &out);
  // With slack 0 every event sits at the watermark and releases instantly.
  EXPECT_EQ(out.size(), 3u);
  reorderer.Flush(&out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(KSlackReordererTest, RandomizedSortsBoundedDisorder) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    // In-order base stream, then bounded shuffle.
    std::vector<Event> base;
    Timestamp ts = 0;
    for (int i = 0; i < 300; ++i) {
      ts += rng.NextInt(0, 20);
      Event e(static_cast<EventTypeId>(rng.NextUInt(4)), ts);
      e.set_seq(static_cast<SeqNum>(i));  // remember original order
      base.push_back(e);
    }
    std::vector<Event> shuffled = base;
    constexpr int kDisplacement = 5;
    for (size_t i = 0; i + 1 < shuffled.size(); ++i) {
      size_t j = i + rng.NextUInt(kDisplacement);
      if (j >= shuffled.size()) j = shuffled.size() - 1;
      std::swap(shuffled[i], shuffled[j]);
    }
    // Slack >= max timestamp displacement guarantees zero drops.
    Timestamp max_disp = 0;
    for (size_t i = 0; i < shuffled.size(); ++i) {
      Timestamp seen_max = 0;
      for (size_t j = 0; j <= i; ++j) {
        seen_max = std::max(seen_max, shuffled[j].ts());
      }
      max_disp = std::max(max_disp, seen_max - shuffled[i].ts());
    }
    KSlackReorderer reorderer(max_disp);
    std::vector<Event> out;
    for (const Event& e : shuffled) reorderer.Push(e, &out);
    reorderer.Flush(&out);
    EXPECT_EQ(reorderer.dropped(), 0u);
    ASSERT_EQ(out.size(), base.size());
    // Released stream must be in non-decreasing timestamp order and be a
    // permutation-free reconstruction w.r.t. timestamps.
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].ts(), out[i].ts());
    }
  }
}

// --------------------------------------------------------------------------
// ReorderingEngine: disorderly stream == in-order results
// --------------------------------------------------------------------------

TEST(ReorderingEngineTest, MatchesInOrderExecution) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Schema schema;
    CompiledQuery cq =
        MustCompile(&schema, "PATTERN SEQ(A, B, C) WITHIN 500");
    Rng rng(seed);
    const char* kTypes[] = {"A", "B", "C", "D"};
    // Strictly increasing timestamps: reordering by timestamp then has a
    // unique answer (ties are unrecoverable by any reorderer).
    std::vector<Event> base;
    Timestamp ts = 0;
    for (int i = 0; i < 400; ++i) {
      ts += rng.NextInt(1, 30);
      base.emplace_back(schema.RegisterEventType(kTypes[rng.NextUInt(4)]),
                        ts);
    }
    // Reference: in-order execution over the timestamp-sorted stream.
    std::vector<Event> sorted = base;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts() < b.ts();
                     });
    AssignSeqNums(&sorted);
    auto ref_engine = CreateAseqEngine(cq);
    RunResult ref = Runtime::RunEvents(sorted, ref_engine->get());

    // Disordered: disjoint swaps two positions apart, so each event is
    // displaced at most 2 slots (<= 60ms with 30ms max gaps).
    std::vector<Event> shuffled = base;
    for (size_t i = 0; i + 3 < shuffled.size(); i += 3) {
      if (rng.NextBool(0.5)) std::swap(shuffled[i], shuffled[i + 2]);
    }
    auto inner = CreateAseqEngine(cq);
    ReorderingEngine engine(std::move(*inner), /*slack_ms=*/200);
    std::vector<Output> outputs;
    SeqNum seq = 0;
    for (Event e : shuffled) {
      e.set_seq(seq++);
      engine.OnEvent(e, &outputs);
    }
    engine.Finish(&outputs);
    EXPECT_EQ(engine.dropped_events(), 0u);

    ASSERT_EQ(outputs.size(), ref.outputs.size())
        << "seed=" << seed;
    for (size_t i = 0; i < outputs.size(); ++i) {
      EXPECT_EQ(outputs[i].ts, ref.outputs[i].ts) << "seed=" << seed;
      EXPECT_TRUE(outputs[i].value.Equals(ref.outputs[i].value))
          << "seed=" << seed << " output#" << i << ": "
          << outputs[i].value.ToString() << " vs "
          << ref.outputs[i].value.ToString();
    }
  }
}

TEST(ReorderingMultiEngineTest, MatchesInOrderExecution) {
  Schema schema;
  std::vector<CompiledQuery> queries;
  queries.push_back(MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 400"));
  queries.push_back(MustCompile(&schema, "PATTERN SEQ(A, C) WITHIN 400"));

  Rng rng(5);
  const char* kTypes[] = {"A", "B", "C"};
  std::vector<Event> base;
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += rng.NextInt(1, 25);
    base.emplace_back(schema.RegisterEventType(kTypes[rng.NextUInt(3)]), ts);
  }
  // Reference: in-order execution.
  std::vector<Event> sorted = base;
  AssignSeqNums(&sorted);
  auto ref = NonSharedEngine::CreateAseq(queries);
  MultiRunResult ref_run = Runtime::RunMultiEvents(sorted, ref->get());

  // Disordered input through the multi-engine K-slack wrapper.
  std::vector<Event> shuffled = base;
  for (size_t i = 0; i + 3 < shuffled.size(); i += 3) {
    std::swap(shuffled[i], shuffled[i + 2]);
  }
  auto inner = NonSharedEngine::CreateAseq(queries);
  ReorderingMultiEngine engine(std::move(*inner), /*slack_ms=*/100);
  EXPECT_EQ(engine.name(), "NonShare(A-Seq)+KSlack");
  std::vector<MultiOutput> outputs;
  SeqNum seq = 0;
  for (Event e : shuffled) {
    e.set_seq(seq++);
    engine.OnEvent(e, &outputs);
  }
  engine.Finish(&outputs);
  EXPECT_EQ(engine.dropped_events(), 0u);
  EXPECT_EQ(engine.buffered_events(), 0u);

  ASSERT_EQ(outputs.size(), ref_run.outputs.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].query_index, ref_run.outputs[i].query_index);
    EXPECT_TRUE(outputs[i].output.value.Equals(
        ref_run.outputs[i].output.value))
        << "output#" << i;
  }
}

// --------------------------------------------------------------------------
// Slack-bound boundary cases
// --------------------------------------------------------------------------

TEST(KSlackReordererTest, EventExactlyAtSlackBoundIsAccepted) {
  KSlackReorderer reorderer(100);
  std::vector<Event> out;
  reorderer.Push(Event(0, 200), &out);  // watermark 200, release bound 100
  // ts == watermark - slack is the oldest still-orderable event: accepted
  // (and immediately releasable), not dropped.
  reorderer.Push(Event(1, 100), &out);
  EXPECT_EQ(reorderer.dropped(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts(), 100);
  // One millisecond older is beyond the bound: dropped.
  reorderer.Push(Event(2, 99), &out);
  EXPECT_EQ(reorderer.dropped(), 1u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(KSlackReordererTest, DuplicateTimestampsExactlyAtSlackBound) {
  KSlackReorderer reorderer(50);
  std::vector<Event> out;
  reorderer.Push(Event(1, 150), &out);  // release bound 100
  // Several duplicates squarely on the bound: all accepted, all released
  // in arrival order (none may be misclassified as late).
  reorderer.Push(Event(2, 100), &out);
  reorderer.Push(Event(3, 100), &out);
  reorderer.Push(Event(4, 100), &out);
  EXPECT_EQ(reorderer.dropped(), 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type(), 2u);
  EXPECT_EQ(out[1].type(), 3u);
  EXPECT_EQ(out[2].type(), 4u);
  reorderer.Flush(&out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].ts(), 150);
}

TEST(KSlackReordererTest, DuplicateWatermarkTimestampsDoNotAdvanceBound) {
  KSlackReorderer reorderer(30);
  std::vector<Event> out;
  reorderer.Push(Event(1, 100), &out);
  reorderer.Push(Event(2, 100), &out);  // duplicate watermark: bound stays 70
  reorderer.Push(Event(3, 70), &out);   // still exactly at the bound
  EXPECT_EQ(reorderer.dropped(), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ts(), 70);
}

// --------------------------------------------------------------------------
// Drop accounting and end-of-stream drain (robustness satellites)
// --------------------------------------------------------------------------

TEST(ReorderingEngineTest, DroppedEventsFoldIntoEngineStats) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  auto inner = CreateAseqEngine(cq);
  ReorderingEngine engine(std::move(*inner), /*slack_ms=*/50);
  std::vector<Output> outputs;
  EventTypeId a = schema.RegisterEventType("A");
  Event first(a, 1000);
  first.set_seq(0);
  engine.OnEvent(first, &outputs);
  Event late(a, 100);  // 900ms late against a 50ms slack
  late.set_seq(1);
  engine.OnEvent(late, &outputs);
  EXPECT_EQ(engine.dropped_events(), 1u);
  // The drop is never silently swallowed: stats() folds it into
  // EngineStats::dropped_events even though the inner engine never saw
  // the event.
  EXPECT_EQ(engine.stats().dropped_events, 1u);
  engine.Finish(&outputs);
  EXPECT_EQ(engine.stats().events_processed, 1u);
  EXPECT_EQ(engine.stats().dropped_events, 1u);
}

TEST(ReorderingEngineTest, FinishDrainsThroughOnBatch) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  auto inner = CreateAseqEngine(cq);
  ReorderingEngine engine(std::move(*inner), /*slack_ms=*/100);
  std::vector<Output> outputs;
  EventTypeId a = schema.RegisterEventType("A");
  Event e(a, 10);
  e.set_seq(0);
  engine.OnEvent(e, &outputs);
  EXPECT_EQ(engine.buffered_events(), 1u);
  engine.Finish(&outputs);
  EXPECT_EQ(engine.buffered_events(), 0u);
  // The drain goes through the inner engine's batched path — the same code
  // as steady-state processing — so the batch counter must have moved.
  EXPECT_EQ(engine.inner()->stats().batches_processed, 1u);
  EXPECT_EQ(engine.stats().events_processed, 1u);
}

TEST(ReorderingEngineTest, NameAndStatsForwarded) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  auto inner = CreateAseqEngine(cq);
  ReorderingEngine engine(std::move(*inner), 100);
  EXPECT_EQ(engine.name(), "A-Seq(SEM)+KSlack");
  std::vector<Output> outputs;
  engine.OnEvent(Event(schema.RegisterEventType("A"), 10), &outputs);
  EXPECT_EQ(engine.buffered_events(), 1u);
  engine.Finish(&outputs);
  EXPECT_EQ(engine.buffered_events(), 0u);
  EXPECT_EQ(engine.stats().events_processed, 1u);
}

}  // namespace
}  // namespace aseq
