// KeyInterner and InternedKey: the dense-id layer between partition-key
// Values and the flat partition store. The contract under test: ids are
// assigned in first-intern order, interning is Value::Equals-consistent,
// Lookup never mutates, and a checkpoint round-trip (values in id order)
// reproduces every id exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "container/key_interner.h"

namespace aseq {
namespace container {
namespace {

TEST(KeyInternerTest, IdsAssignedInFirstInternOrder) {
  KeyInterner interner;
  EXPECT_EQ(interner.Intern(Value("alice")), 0u);
  EXPECT_EQ(interner.Intern(Value("bob")), 1u);
  EXPECT_EQ(interner.Intern(Value(42)), 2u);
  // Re-interning returns the existing id.
  EXPECT_EQ(interner.Intern(Value("alice")), 0u);
  EXPECT_EQ(interner.Intern(Value(42)), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_TRUE(interner.ValueOf(0).Equals(Value("alice")));
  EXPECT_TRUE(interner.ValueOf(1).Equals(Value("bob")));
  EXPECT_TRUE(interner.ValueOf(2).Equals(Value(42)));
}

TEST(KeyInternerTest, EqualsConsistentAcrossNumericTypes) {
  // Value(1) and Value(1.0) are Equals-equal and must share an id — the
  // id compare on the probe path stands in for a Value::Equals compare.
  KeyInterner interner;
  const uint32_t id = interner.Intern(Value(1));
  EXPECT_EQ(interner.Intern(Value(1.0)), id);
  EXPECT_EQ(interner.Lookup(Value(1.0)), id);
  EXPECT_EQ(interner.size(), 1u);
  // The stored representative is the first-seen one.
  EXPECT_TRUE(interner.ValueOf(id).Equals(Value(1)));
  // A non-integral double is its own key.
  EXPECT_NE(interner.Intern(Value(1.5)), id);
}

TEST(KeyInternerTest, LookupDoesNotMutate) {
  KeyInterner interner;
  interner.Intern(Value("seen"));
  EXPECT_EQ(interner.Lookup(Value("never-interned")), kNoId);
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.Lookup(Value("seen")), 0u);
}

TEST(KeyInternerTest, RestoreFromValuesReproducesIds) {
  KeyInterner original;
  for (int i = 0; i < 500; ++i) original.Intern(Value(i * 7));
  original.Intern(Value("trader-x"));

  KeyInterner restored;
  ASSERT_TRUE(restored.RestoreFromValues(original.values()));
  ASSERT_EQ(restored.size(), original.size());
  for (uint32_t id = 0; id < original.size(); ++id) {
    EXPECT_TRUE(restored.ValueOf(id).Equals(original.ValueOf(id))) << id;
    EXPECT_EQ(restored.Lookup(original.ValueOf(id)), id) << id;
  }
  // The restored interner continues assigning ids exactly where the
  // original would: the next unseen value gets the next dense id.
  EXPECT_EQ(restored.Intern(Value("unseen")), original.size());
}

TEST(KeyInternerTest, RestoreRejectsDuplicateValues) {
  // A duplicate in the id-ordered sequence would alias two ids; the
  // restore must fail and leave the interner empty rather than guess.
  std::vector<Value> corrupt = {Value(1), Value(2), Value(1.0)};
  KeyInterner interner;
  EXPECT_FALSE(interner.RestoreFromValues(std::move(corrupt)));
  EXPECT_EQ(interner.size(), 0u);
}

TEST(InternedKeyTest, DefaultIsAllNoIdAndComparesWholeArray) {
  InternedKey a;
  for (uint32_t id : a.ids) EXPECT_EQ(id, kNoId);
  InternedKey b;
  EXPECT_EQ(a, b);
  a.ids[0] = 7;
  EXPECT_NE(a, b);
  b.ids[0] = 7;
  EXPECT_EQ(a, b);
  // A difference in any part — including trailing ones — breaks equality.
  b.ids[kMaxKeyParts - 1] = 0;
  EXPECT_NE(a, b);
}

TEST(InternedKeyTest, HashIsContentPure) {
  InternedKey a;
  a.ids[0] = 1;
  a.ids[1] = 2;
  InternedKey b;
  b.ids[0] = 1;
  b.ids[1] = 2;
  EXPECT_EQ(InternedKeyHash{}(a), InternedKeyHash{}(b));
  b.ids[1] = 3;
  EXPECT_NE(InternedKeyHash{}(a), InternedKeyHash{}(b));
}

}  // namespace
}  // namespace container
}  // namespace aseq
