// Tests for the SPSC ring queue behind the sharded dataplane
// (exec/spsc_ring.h, docs/internals.md §16): single-threaded invariants,
// wraparound, overflow refusal, move-only payloads, and a randomized
// bursty producer/consumer stress across the small capacities the
// executor actually uses.

#include "exec/spsc_ring.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace aseq {
namespace exec {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(16).capacity(), 16u);
  EXPECT_EQ(SpscRing<int>(17).capacity(), 32u);
}

TEST(SpscRingTest, PushPopFifoSingleThreaded) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v)) << i;
  }
  EXPECT_TRUE(ring.Full());
  EXPECT_EQ(ring.size(), 4u);
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  // Free-running indices: push/pop far past the capacity so the masked
  // slot index wraps repeatedly and (with a tiny ring) exercises every
  // head/tail phase alignment.
  SpscRing<uint64_t> ring(2);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  std::mt19937 rng(7);
  for (int step = 0; step < 20000; ++step) {
    if (rng() % 2 == 0) {
      uint64_t v = next_push;
      if (ring.TryPush(v)) ++next_push;
    } else {
      uint64_t out = 0;
      if (ring.TryPop(&out)) {
        ASSERT_EQ(out, next_pop);
        ++next_pop;
      }
    }
    ASSERT_LE(next_push - next_pop, ring.capacity());
    ASSERT_EQ(ring.size(), next_push - next_pop);
  }
}

TEST(SpscRingTest, OverflowRefusesWithoutClobbering) {
  SpscRing<int> ring(2);
  int a = 1, b = 2, c = 3;
  ASSERT_TRUE(ring.TryPush(a));
  ASSERT_TRUE(ring.TryPush(b));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(ring.TryPush(c));
  }
  // The refused pushes must not have disturbed the queued items.
  int out = 0;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, MoveOnlyPayload) {
  // LaneItem carries a std::vector of ops; unique_ptr is the strictest
  // stand-in for that move-only shape.
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_unique<int>(i);
    ASSERT_TRUE(ring.TryPush(p));
    EXPECT_EQ(p, nullptr);  // moved from
  }
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, i);
  }
}

TEST(SpscRingTest, ClearDiscardsQueuedItems) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<int>(i);
    ASSERT_TRUE(ring.TryPush(p));
  }
  ring.Clear();
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.size(), 0u);
  // Usable again after the reset.
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(ring.TryPush(p));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 42);
}

/// Randomized cross-thread stress: a bursty producer pushes a known
/// sequence through a tiny ring while a bursty consumer pops and checks
/// FIFO order and a running checksum. Small capacities (2..8) force
/// constant wraparound and full/empty boundary hits; random spin bursts
/// on both sides shuffle the interleaving. TSan runs this in CI
/// (ctest -L shard), which is the real acquire/release correctness check.
void BurstyStress(size_t capacity, uint32_t seed, uint64_t total) {
  SpscRing<uint64_t> ring(capacity);
  std::atomic<bool> producer_done{false};
  uint64_t consumed_sum = 0;
  uint64_t consumed_count = 0;

  std::thread consumer([&] {
    std::mt19937 rng(seed * 2654435761u + 1);
    uint64_t expect = 0;
    for (;;) {
      uint64_t out = 0;
      if (ring.TryPop(&out)) {
        ASSERT_EQ(out, expect);
        ++expect;
        consumed_sum += out;
        ++consumed_count;
        // Bursty drain: sometimes stall mid-stream to let the ring fill.
        if (rng() % 64 == 0) {
          std::this_thread::yield();
        }
        continue;
      }
      if (producer_done.load(std::memory_order_acquire) && ring.Empty()) {
        return;
      }
      // Yield, not spin: on a single-core host a spinning consumer starves
      // the producer for a whole scheduler quantum per handoff.
      std::this_thread::yield();
    }
  });

  std::mt19937 rng(seed);
  uint64_t pushed = 0;
  while (pushed < total) {
    // Push a burst, spin when full (mirrors the coordinator's protocol).
    const uint64_t burst = 1 + rng() % (2 * capacity);
    for (uint64_t i = 0; i < burst && pushed < total; ++i) {
      uint64_t v = pushed;
      while (!ring.TryPush(v)) {
        std::this_thread::yield();
      }
      ++pushed;
    }
    if (rng() % 8 == 0) {
      std::this_thread::yield();
    }
  }
  producer_done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed_count, total);
  EXPECT_EQ(consumed_sum, total * (total - 1) / 2);
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingStressTest, BurstyProducerConsumerAcrossCapacities) {
  for (size_t capacity : {2u, 3u, 4u, 8u}) {
    for (uint32_t seed : {1u, 2u, 3u}) {
      BurstyStress(capacity, seed, 20000);
    }
  }
}

TEST(SpscRingStressTest, ExecutorShapedCapacity) {
  // The executor's actual lane depth.
  BurstyStress(16, 11, 50000);
}

}  // namespace
}  // namespace exec
}  // namespace aseq
