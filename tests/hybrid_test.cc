#include <gtest/gtest.h>

#include <map>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "multi/hybrid_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

using OutputKey = std::tuple<size_t, SeqNum, std::string>;

std::map<OutputKey, std::string> ToMap(const std::vector<MultiOutput>& outputs) {
  std::map<OutputKey, std::string> m;
  for (const MultiOutput& mo : outputs) {
    std::string group =
        mo.output.group.has_value() ? mo.output.group->ToString() : "";
    m[{mo.query_index, mo.output.seq, group}] = mo.output.value.ToString();
  }
  return m;
}

TEST(HybridEngineTest, RoutesMixedWorkloadAndMatchesReferences) {
  Schema schema;
  StockStreamOptions options;
  options.seed = 77;
  options.num_events = 4000;
  options.max_gap_ms = 8;
  options.num_traders = 5;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);

  // A deliberately mixed workload touching every routing path.
  std::vector<const char*> texts = {
      // Two COUNT queries sharing the DELL start -> PreTree.
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX, QQQ) AGG COUNT WITHIN 1s",
      // Two queries sharing (MSFT, CSCO) mid-pattern, distinct starts -> CC.
      "PATTERN SEQ(INTC, MSFT, CSCO) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(ORCL, MSFT, CSCO) AGG COUNT WITHIN 1s",
      // Negation -> per-query A-Seq(SEM).
      "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 1s",
      // GROUP BY -> per-query A-Seq(HPC).
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 1s",
      // SUM -> per-query A-Seq.
      "PATTERN SEQ(DELL, IPIX) AGG SUM(IPIX.volume) WITHIN 1s",
      // Join predicate -> stack fallback.
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 1s",
  };
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const char* text : texts) {
    auto cq = analyzer.AnalyzeText(text);
    ASSERT_TRUE(cq.ok()) << text << ": " << cq.status().ToString();
    queries.push_back(std::move(cq).value());
  }

  auto hybrid = HybridMultiEngine::Create(queries);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  const auto& routing = (*hybrid)->routing();
  ASSERT_EQ(routing.size(), 8u);
  EXPECT_NE(routing[0].find("PreTree"), std::string::npos) << routing[0];
  EXPECT_NE(routing[1].find("PreTree"), std::string::npos);
  EXPECT_NE(routing[2].find("ChopConnect"), std::string::npos) << routing[2];
  EXPECT_NE(routing[3].find("ChopConnect"), std::string::npos);
  EXPECT_EQ(routing[4], "A-Seq(SEM)");
  EXPECT_EQ(routing[5], "A-Seq(HPC)");
  EXPECT_EQ(routing[6], "A-Seq(SEM)");
  EXPECT_NE(routing[7].find("StackBased"), std::string::npos) << routing[7];

  MultiRunResult run = Runtime::RunMultiEvents(events, hybrid->get());
  auto got = ToMap(run.outputs);

  // Reference: the canonical single-query engine per query.
  std::map<OutputKey, std::string> ref;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::unique_ptr<QueryEngine> engine;
    if (queries[qi].has_join_predicates()) {
      engine = std::make_unique<StackEngine>(queries[qi]);
    } else {
      engine = CreateAseqEngine(queries[qi]).MoveValue();
    }
    for (const Output& output :
         Runtime::RunEvents(events, engine.get()).outputs) {
      std::string group =
          output.group.has_value() ? output.group->ToString() : "";
      ref[{qi, output.seq, group}] = output.value.ToString();
    }
  }
  ASSERT_EQ(ref.size(), got.size());
  size_t checked = 0;
  for (const auto& [key, value] : ref) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "missing output for query "
                             << std::get<0>(key);
    ASSERT_EQ(value, it->second) << "query " << std::get<0>(key) << " seq "
                                 << std::get<1>(key);
    ++checked;
  }
  EXPECT_GT(checked, 100u);  // the workload produced substantial output
}

TEST(HybridEngineTest, SingleQueryWorkload) {
  Schema schema;
  std::vector<CompiledQuery> queries = {
      MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s")};
  auto hybrid = HybridMultiEngine::Create(queries);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ((*hybrid)->routing()[0], "A-Seq(SEM)");
}

TEST(HybridEngineTest, UnboundedWindowsStayPerQuery) {
  Schema schema;
  std::vector<CompiledQuery> queries = {
      MustCompile(&schema, "PATTERN SEQ(A, B)"),
      MustCompile(&schema, "PATTERN SEQ(A, C)")};
  auto hybrid = HybridMultiEngine::Create(queries);
  ASSERT_TRUE(hybrid.ok());
  // Sharing engines require windows; both route to DPC.
  EXPECT_EQ((*hybrid)->routing()[0], "A-Seq(DPC)");
  EXPECT_EQ((*hybrid)->routing()[1], "A-Seq(DPC)");
}

TEST(HybridEngineTest, MixedWindowsFormSeparateGroups) {
  Schema schema;
  std::vector<CompiledQuery> queries = {
      MustCompile(&schema, "PATTERN SEQ(A, B, C) WITHIN 1s"),
      MustCompile(&schema, "PATTERN SEQ(A, B, D) WITHIN 1s"),
      MustCompile(&schema, "PATTERN SEQ(A, B, E) WITHIN 2s"),
  };
  auto hybrid = HybridMultiEngine::Create(queries);
  ASSERT_TRUE(hybrid.ok());
  const auto& routing = (*hybrid)->routing();
  EXPECT_NE(routing[0].find("win=1000"), std::string::npos);
  EXPECT_NE(routing[1].find("win=1000"), std::string::npos);
  // The 2s query has no same-window sibling: per-query engine.
  EXPECT_EQ(routing[2], "A-Seq(SEM)");
}

TEST(HybridEngineTest, EmptyWorkloadRejected) {
  EXPECT_FALSE(HybridMultiEngine::Create({}).ok());
}

}  // namespace
}  // namespace aseq
