#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/naive_enumerator.h"
#include "baseline/stack_engine.h"
#include "common/rng.h"
#include "engine/runtime.h"
#include "query/analyzer.h"

namespace aseq {
namespace {

/// Randomized stream: types A..E plus X/Y (used as negated types), attrs
/// `id` (small int domain), `w` (double in [0.5, 10.5]), `ip` (two values).
std::vector<Event> RandomStream(Schema* schema, uint64_t seed, size_t n) {
  static const char* kTypes[] = {"A", "B", "C", "D", "E", "X", "Y"};
  Rng rng(seed);
  std::vector<Event> events;
  Timestamp ts = 0;
  AttrId id = schema->RegisterAttribute("id");
  AttrId w = schema->RegisterAttribute("w");
  AttrId ip = schema->RegisterAttribute("ip");
  for (size_t i = 0; i < n; ++i) {
    ts += rng.NextInt(0, 300);
    Event e(schema->RegisterEventType(kTypes[rng.NextUInt(7)]), ts);
    e.SetAttr(id, Value(rng.NextInt(0, 2)));
    e.SetAttr(w, Value(0.5 + rng.NextDouble() * 10));
    e.SetAttr(ip, Value(rng.NextBool(0.5) ? "p" : "q"));
    // Occasionally omit attributes to exercise missing-attr paths.
    if (rng.NextBool(0.05)) {
      Event bare(e.type(), e.ts());
      e = bare;
    }
    events.push_back(std::move(e));
  }
  AssignSeqNums(&events);
  return events;
}

/// Canonical (group -> value) map with zero/undefined entries dropped.
std::map<std::string, Value> Canonical(const std::vector<Output>& outputs) {
  std::map<std::string, Value> out;
  for (const Output& output : outputs) {
    if (output.value.is_null()) continue;
    if (output.value.type() == ValueType::kInt64 &&
        output.value.AsInt64() == 0) {
      continue;
    }
    if (output.value.type() == ValueType::kDouble &&
        output.value.AsDouble() == 0.0) {
      continue;
    }
    std::string key =
        output.group.has_value() ? output.group->ToString() : "<all>";
    out[key] = output.value;
  }
  return out;
}

bool ValuesClose(const Value& a, const Value& b) {
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return a.AsInt64() == b.AsInt64();
  }
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.ToDouble(), y = b.ToDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return a.Equals(b);
}

void ExpectSame(const std::map<std::string, Value>& expected,
                const std::map<std::string, Value>& actual,
                const std::string& context) {
  EXPECT_EQ(expected.size(), actual.size()) << context;
  for (const auto& [key, value] : expected) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      ADD_FAILURE() << context << ": missing group " << key << " (expected "
                    << value.ToString() << ")";
      continue;
    }
    EXPECT_TRUE(ValuesClose(value, it->second))
        << context << ": group " << key << " expected " << value.ToString()
        << " got " << it->second.ToString();
  }
}

struct PropertyCase {
  std::string label;
  std::string query;
  bool aseq_supported = true;  // join-predicate queries run baseline-only
};

class OraclePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<PropertyCase, uint64_t, size_t>> {};

TEST_P(OraclePropertyTest, EnginesMatchBruteForce) {
  const PropertyCase& pc = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const size_t stream_len = std::get<2>(GetParam());

  Schema schema;
  std::vector<Event> events = RandomStream(&schema, seed, stream_len);
  Analyzer analyzer(&schema);
  auto compiled = analyzer.AnalyzeText(pc.query);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  NaiveEnumerator oracle(*compiled);
  StackEngine stack(*compiled);
  std::unique_ptr<QueryEngine> aseq;
  if (pc.aseq_supported) {
    auto engine = CreateAseqEngine(*compiled);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    aseq = std::move(*engine);
  }

  std::vector<Output> scratch;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    std::string context = pc.label + " seed=" + std::to_string(seed) +
                          " event#" + std::to_string(i);
    std::map<std::string, Value> expected =
        Canonical(oracle.Aggregate(events, i, e.ts()));

    scratch.clear();
    stack.OnEvent(e, &scratch);
    ExpectSame(expected, Canonical(stack.Poll(e.ts())), context + " [stack]");

    if (aseq != nullptr) {
      scratch.clear();
      aseq->OnEvent(e, &scratch);
      ExpectSame(expected, Canonical(aseq->Poll(e.ts())),
                 context + " [aseq:" + aseq->name() + "]");
      // TRIG outputs must agree with the oracle at trigger time too.
      for (const Output& output : scratch) {
        if (output.value.is_null()) continue;
        std::string key =
            output.group.has_value() ? output.group->ToString() : "<all>";
        auto it = expected.find(key);
        Value expected_value =
            it != expected.end() ? it->second : output.value;
        if (it == expected.end()) {
          // Zero/undefined outputs were filtered from `expected`: the
          // engine's value must then be zero-ish.
          bool zeroish =
              (output.value.type() == ValueType::kInt64 &&
               output.value.AsInt64() == 0) ||
              (output.value.type() == ValueType::kDouble &&
               output.value.AsDouble() == 0.0);
          EXPECT_TRUE(zeroish) << context << " [trig] group " << key
                               << " got " << output.value.ToString();
        } else {
          EXPECT_TRUE(ValuesClose(expected_value, output.value))
              << context << " [trig] group " << key << " expected "
              << expected_value.ToString() << " got "
              << output.value.ToString();
        }
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // first divergence is enough; keep logs short
    }
  }
}

std::vector<PropertyCase> Cases() {
  return {
      {"basic3", "PATTERN SEQ(A, B, C) WITHIN 700"},
      {"unbounded", "PATTERN SEQ(A, B)"},
      {"len1", "PATTERN SEQ(A) WITHIN 400"},
      {"len4", "PATTERN SEQ(A, B, C, D) WITHIN 1200"},
      {"neg_mid", "PATTERN SEQ(A, !X, B, C) WITHIN 900"},
      {"neg_late", "PATTERN SEQ(A, B, !X, C) WITHIN 600"},
      {"neg_two", "PATTERN SEQ(A, !X, B, !Y, C) WITHIN 900"},
      {"neg_unbounded", "PATTERN SEQ(A, !X, B)"},
      {"dup", "PATTERN SEQ(A, A, B) WITHIN 800"},
      {"dup_sandwich", "PATTERN SEQ(A, B, A) WITHIN 800"},
      {"equiv", "PATTERN SEQ(A, B) WHERE A.id = B.id WITHIN 700"},
      {"equiv3", "PATTERN SEQ(A, B, C) WHERE A.id = B.id = C.id WITHIN 900"},
      {"group", "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 800"},
      {"group_equiv",
       "PATTERN SEQ(A, B) WHERE A.id = B.id GROUP BY ip WITHIN 800"},
      {"neg_in_class",
       "PATTERN SEQ(A, !X, B) WHERE A.id = X.id = B.id WITHIN 700"},
      {"neg_broadcast",
       "PATTERN SEQ(A, !X, B) WHERE A.id = B.id WITHIN 700"},
      {"sum", "PATTERN SEQ(A, B, C) AGG SUM(B.w) WITHIN 800"},
      {"sum_start", "PATTERN SEQ(A, B) AGG SUM(A.w) WITHIN 700"},
      {"avg", "PATTERN SEQ(A, B, C) AGG AVG(C.w) WITHIN 800"},
      {"max", "PATTERN SEQ(A, B) AGG MAX(A.w) WITHIN 600"},
      {"min_neg", "PATTERN SEQ(A, !X, B, C) AGG MIN(B.w) WITHIN 800"},
      {"max_trig", "PATTERN SEQ(A, B, C) AGG MAX(C.w) WITHIN 700"},
      {"local", "PATTERN SEQ(A, B) WHERE A.w < 5 WITHIN 700"},
      {"local_both",
       "PATTERN SEQ(A, B) WHERE A.w < 8 AND B.w > 2 WITHIN 700"},
      {"group_sum",
       "PATTERN SEQ(A, B, C) GROUP BY id AGG SUM(B.w) WITHIN 900"},
      {"group_neg",
       "PATTERN SEQ(A, !X, B) GROUP BY ip AGG COUNT WITHIN 800"},
      {"equiv_two_attrs",
       "PATTERN SEQ(A, B) WHERE A.id = B.id AND A.ip = B.ip WITHIN 700"},
      {"group_unbounded", "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT"},
      {"sum_unbounded", "PATTERN SEQ(A, B) AGG SUM(B.w)"},
      {"group_neg_equiv",
       "PATTERN SEQ(A, !X, B) WHERE A.id = B.id GROUP BY ip WITHIN 600"},
      {"join", "PATTERN SEQ(A, B) WHERE A.w < B.w WITHIN 700", false},
      {"join_ne", "PATTERN SEQ(A, B) WHERE A.id != B.id WITHIN 700", false},
      {"join_three",
       "PATTERN SEQ(A, B, C) WHERE A.w < B.w AND B.w < C.w WITHIN 800",
       false},
  };
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<PropertyCase, uint64_t, size_t>>&
        info) {
  return std::get<0>(info.param).label + "_s" +
         std::to_string(std::get<1>(info.param)) + "_n" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, OraclePropertyTest,
    ::testing::Combine(::testing::ValuesIn(Cases()),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12),
                       ::testing::Values(30)),
    CaseName);

// Longer streams at fewer seeds: more matches per window, more expirations
// per run (the brute-force oracle is exponential in stream length, so keep
// this sweep narrow).
INSTANTIATE_TEST_SUITE_P(
    RandomizedLong, OraclePropertyTest,
    ::testing::Combine(::testing::ValuesIn(Cases()),
                       ::testing::Values(101, 102, 103),
                       ::testing::Values(45)),
    CaseName);

}  // namespace
}  // namespace aseq
