// Status/Result edge cases: move-only payloads through Result and
// ASEQ_ASSIGN_OR_RETURN, error propagation through nested calls, and the
// copy/move semantics the error-handling idiom relies on. These are the
// primitives every fallible path in the library goes through — a subtle
// double-move or slicing bug here corrupts everything above it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace aseq {
namespace {

// ---------------------------------------------------------------------------
// Status basics
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad byte at 7");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad byte at 7");
  EXPECT_EQ(st.ToString(), "ParseError: bad byte at 7");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("m").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::IoError("m").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesError) {
  Status original = Status::IoError("disk full");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kIoError);
  EXPECT_EQ(copy.message(), "disk full");
  EXPECT_EQ(original.message(), "disk full");
}

// ---------------------------------------------------------------------------
// Result with move-only types
// ---------------------------------------------------------------------------

Result<std::unique_ptr<int>> MakeBox(int v) {
  return std::make_unique<int>(v);
}

Result<std::unique_ptr<int>> FailBox() {
  return Status::NotFound("no box");
}

TEST(ResultTest, MoveOnlyValueRoundTrip) {
  Result<std::unique_ptr<int>> r = MakeBox(41);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> box = std::move(r).value();
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(*box, 41);
}

TEST(ResultTest, MoveValueExtractsOwnership) {
  Result<std::unique_ptr<int>> r = MakeBox(7);
  std::unique_ptr<int> box = r.MoveValue();
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(*box, 7);
}

TEST(ResultTest, ErrorResultReportsStatus) {
  Result<std::unique_ptr<int>> r = FailBox();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no box");
}

TEST(ResultTest, ArrowAndDereferenceAccessors) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_EQ(*r, "hello");
  r->append("!");
  EXPECT_EQ(*r, "hello!");
}

TEST(ResultTest, ConstAccessors) {
  const Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[2], 3);
  EXPECT_EQ(r.value().front(), 1);
}

// ---------------------------------------------------------------------------
// ASEQ_ASSIGN_OR_RETURN / ASEQ_RETURN_NOT_OK propagation
// ---------------------------------------------------------------------------

Status ConsumeBoxes(bool fail_second, int* sum) {
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<int> a, MakeBox(10));
  ASEQ_ASSIGN_OR_RETURN(std::unique_ptr<int> b,
                        fail_second ? FailBox() : MakeBox(32));
  *sum = *a + *b;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnWithMoveOnlyType) {
  int sum = 0;
  Status st = ConsumeBoxes(/*fail_second=*/false, &sum);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(sum, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int sum = -1;
  Status st = ConsumeBoxes(/*fail_second=*/true, &sum);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "no box");
  EXPECT_EQ(sum, -1) << "failed call must not have partially assigned";
}

Status Inner(int depth) {
  if (depth == 0) return Status::OutOfRange("bottom");
  ASEQ_RETURN_NOT_OK(Inner(depth - 1));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagatesThroughNesting) {
  Status st = Inner(5);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(st.message(), "bottom");
}

// Assigning to a pre-declared variable (no declaration in the macro) must
// also work — the macro is used both ways in the codebase.
Status AssignToExisting(std::string* out) {
  std::string value;
  ASEQ_ASSIGN_OR_RETURN(value, Result<std::string>(std::string("filled")));
  *out = std::move(value);
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnToExistingVariable) {
  std::string out;
  ASSERT_TRUE(AssignToExisting(&out).ok());
  EXPECT_EQ(out, "filled");
}

// A Result holding a type that is expensive to copy should be moved, not
// copied, by the macro. Track copies explicitly.
struct CopyCounter {
  int copies = 0;
  CopyCounter() = default;
  CopyCounter(const CopyCounter& other) : copies(other.copies + 1) {}
  CopyCounter& operator=(const CopyCounter& other) {
    copies = other.copies + 1;
    return *this;
  }
  CopyCounter(CopyCounter&&) = default;
  CopyCounter& operator=(CopyCounter&&) = default;
};

Status PassThrough(CopyCounter* out) {
  ASEQ_ASSIGN_OR_RETURN(CopyCounter c, Result<CopyCounter>(CopyCounter{}));
  *out = std::move(c);
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMovesNotCopies) {
  CopyCounter out;
  ASSERT_TRUE(PassThrough(&out).ok());
  EXPECT_EQ(out.copies, 0) << "macro copied the value instead of moving it";
}

}  // namespace
}  // namespace aseq
