#ifndef ASEQ_TESTS_TEST_UTIL_H_
#define ASEQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/event.h"
#include "common/schema.h"
#include "common/value.h"
#include "engine/runtime.h"
#include "query/analyzer.h"

namespace aseq {
namespace testing_util {

/// Builds event streams tersely: `b.Add("A", 1, {{"id", 5}})`.
class StreamBuilder {
 public:
  explicit StreamBuilder(Schema* schema) : schema_(schema) {}

  StreamBuilder& Add(const std::string& type, Timestamp ts,
                     std::vector<std::pair<std::string, Value>> attrs = {}) {
    Event e(schema_->RegisterEventType(type), ts);
    for (auto& [name, value] : attrs) {
      e.SetAttr(schema_->RegisterAttribute(name), std::move(value));
    }
    events_.push_back(std::move(e));
    return *this;
  }

  /// Returns the stream with sequence numbers assigned.
  std::vector<Event> Build() {
    AssignSeqNums(&events_);
    return events_;
  }

 private:
  Schema* schema_;
  std::vector<Event> events_;
};

/// Parses + analyzes a query; aborts the test on failure.
inline CompiledQuery MustCompile(Schema* schema, const std::string& text) {
  Analyzer analyzer(schema);
  auto result = analyzer.AnalyzeText(text);
  if (!result.ok()) {
    ADD_FAILURE() << "query failed to compile: " << text << " — "
                  << result.status().ToString();
    return CompiledQuery();
  }
  return std::move(result).value();
}

/// Extracts the int64 count of an ungrouped COUNT output.
inline int64_t CountOf(const Output& output) {
  EXPECT_EQ(output.value.type(), ValueType::kInt64)
      << "expected COUNT output, got " << output.value.ToString();
  return output.value.type() == ValueType::kInt64 ? output.value.AsInt64() : -1;
}

}  // namespace testing_util
}  // namespace aseq

#endif  // ASEQ_TESTS_TEST_UTIL_H_
