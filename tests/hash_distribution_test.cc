// Distribution smoke tests for the hash functions feeding the
// open-addressing tables. An open table is far less forgiving than a
// chained one: structured key populations (sequential trader ids, small
// composite keys) must still spread across both the probe start (H1) and
// the control byte (H2), or probe chains collapse into linear scans.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/hash_mix.h"
#include "common/value.h"
#include "query/compiled_query.h"

namespace aseq {
namespace {

constexpr size_t kKeys = 10000;
constexpr size_t kBuckets = 1024;

/// Max bucket occupancy after throwing `hashes` into kBuckets buckets by
/// the given bit-slice. For 10k keys over 1k buckets a uniform hash lands
/// ~9.8 per bucket with a Poisson tail; 30 is a generous bound that a
/// clustered hash (pre-avalanche Value::Hash put sequential ints into
/// sequential buckets — fine for chaining, fatal for open addressing)
/// blows past by an order of magnitude.
size_t MaxBucketLoad(const std::vector<uint64_t>& hashes, unsigned shift) {
  std::vector<size_t> buckets(kBuckets, 0);
  for (uint64_t h : hashes) {
    ++buckets[(h >> shift) & (kBuckets - 1)];
  }
  return *std::max_element(buckets.begin(), buckets.end());
}

TEST(HashDistributionTest, HashMix64AvalanchesSequentialInputs) {
  std::vector<uint64_t> hashes;
  hashes.reserve(kKeys);
  std::set<uint64_t> distinct;
  for (uint64_t i = 0; i < kKeys; ++i) {
    const uint64_t h = HashMix64(i);
    hashes.push_back(h);
    distinct.insert(h);
  }
  EXPECT_EQ(distinct.size(), kKeys);
  EXPECT_LE(MaxBucketLoad(hashes, 0), 30u);   // low bits (H2 region)
  EXPECT_LE(MaxBucketLoad(hashes, 7), 30u);   // probe-start bits (H1)
  EXPECT_LE(MaxBucketLoad(hashes, 32), 30u);  // high half
}

TEST(HashDistributionTest, ValueHashSpreadsSequentialInts) {
  std::vector<uint64_t> hashes;
  hashes.reserve(kKeys);
  for (uint64_t i = 0; i < kKeys; ++i) {
    hashes.push_back(ValueHash{}(Value(static_cast<int64_t>(i))));
  }
  EXPECT_LE(MaxBucketLoad(hashes, 0), 30u);
  EXPECT_LE(MaxBucketLoad(hashes, 7), 30u);
  // The 7-bit control byte must use its full range, or every probe
  // degenerates to a key compare.
  std::set<uint8_t> h2;
  for (uint64_t h : hashes) h2.insert(static_cast<uint8_t>(h & 0x7F));
  EXPECT_GE(h2.size(), 120u);
}

TEST(HashDistributionTest, ValueHashEqualsConsistency) {
  // Equals-equal values must hash equal (integral doubles alias ints).
  EXPECT_EQ(ValueHash{}(Value(7)), ValueHash{}(Value(7.0)));
  EXPECT_NE(ValueHash{}(Value(7)), ValueHash{}(Value(7.5)));
}

TEST(HashDistributionTest, PartitionKeyHashSpreadsSmallCompositeKeys) {
  // 100x100 two-part grid of small ints — the GROUP BY + equivalence
  // shape. Every pair must hash distinctly and spread.
  std::vector<uint64_t> hashes;
  hashes.reserve(kKeys);
  std::set<uint64_t> distinct;
  for (int64_t i = 0; i < 100; ++i) {
    for (int64_t j = 0; j < 100; ++j) {
      PartitionKey key;
      key.parts = {Value(i), Value(j)};
      const uint64_t h = PartitionKeyHash{}(key);
      hashes.push_back(h);
      distinct.insert(h);
    }
  }
  EXPECT_EQ(distinct.size(), kKeys);
  EXPECT_LE(MaxBucketLoad(hashes, 0), 30u);
  EXPECT_LE(MaxBucketLoad(hashes, 7), 30u);
  // Part order matters: (i, j) and (j, i) are different keys.
  PartitionKey ab;
  ab.parts = {Value(1), Value(2)};
  PartitionKey ba;
  ba.parts = {Value(2), Value(1)};
  EXPECT_NE(PartitionKeyHash{}(ab), PartitionKeyHash{}(ba));
}

}  // namespace
}  // namespace aseq
