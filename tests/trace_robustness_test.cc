// Malformed-trace robustness: every way a trace file can be damaged —
// truncated lines, non-numeric or overflowing timestamps, overflowing
// attribute values, bare attributes — must fail with a line-numbered
// ParseError, never crash, and never leave the caller's schema partially
// mutated (types from lines before the error must not leak in).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/schema.h"
#include "stream/trace_io.h"

namespace aseq {
namespace {

void ExpectParseErrorAtLine(const std::string& content, size_t lineno,
                            const std::string& fragment) {
  Schema schema;
  auto result = ParseTrace(content, &schema);
  ASSERT_FALSE(result.ok()) << "accepted: " << content;
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("line " + std::to_string(lineno)), std::string::npos)
      << "missing line number " << lineno << " in: " << msg;
  EXPECT_NE(msg.find(fragment), std::string::npos)
      << "missing '" << fragment << "' in: " << msg;
}

TEST(TraceRobustnessTest, ValidTraceParses) {
  Schema schema;
  auto result = ParseTrace(
      "# comment\n"
      "DELL,5,price=31.5,volume=100\n"
      "\n"
      "IPIX,9,price=27,note=hello\n",
      &schema);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].ts(), 5);
  EXPECT_EQ((*result)[1].ts(), 9);
  EXPECT_EQ(schema.num_event_types(), 2u);
  EXPECT_EQ(schema.num_attributes(), 3u);
}

TEST(TraceRobustnessTest, TruncatedLine) {
  ExpectParseErrorAtLine("DELL,5\nIPIX\n", 2, "type,timestamp");
}

TEST(TraceRobustnessTest, NonNumericTimestamp) {
  ExpectParseErrorAtLine("DELL,banana\n", 1, "bad timestamp");
}

TEST(TraceRobustnessTest, TrailingGarbageInTimestamp) {
  ExpectParseErrorAtLine("DELL,12x\n", 1, "bad timestamp");
}

TEST(TraceRobustnessTest, TimestampOverflow) {
  ExpectParseErrorAtLine("DELL,99999999999999999999999\n", 1, "overflow");
}

TEST(TraceRobustnessTest, IntegerValueOverflow) {
  ExpectParseErrorAtLine("DELL,5,volume=99999999999999999999999\n", 1,
                         "overflow");
}

TEST(TraceRobustnessTest, DoubleValueOverflow) {
  ExpectParseErrorAtLine("DELL,5,price=" + std::string(400, '9') + ".5\n", 1,
                         "overflow");
}

TEST(TraceRobustnessTest, AttributeWithoutEquals) {
  ExpectParseErrorAtLine("DELL,5,price\n", 1, "attr=value");
}

TEST(TraceRobustnessTest, OutOfOrderTimestamps) {
  ExpectParseErrorAtLine("DELL,10\nIPIX,9\n", 2, "out-of-order");
}

TEST(TraceRobustnessTest, ErrorReportsCorrectLineSkippingComments) {
  ExpectParseErrorAtLine(
      "# header\n"
      "\n"
      "DELL,5\n"
      "IPIX,bad\n",
      4, "bad timestamp");
}

TEST(TraceRobustnessTest, FailedParseLeavesSchemaUntouched) {
  Schema schema;
  schema.RegisterEventType("EXISTING");
  // Two clean lines register DELL/IPIX and attributes before line 3 fails;
  // none of that may leak into the caller's schema.
  auto result = ParseTrace(
      "DELL,5,price=1\n"
      "IPIX,6,volume=2\n"
      "AMAT,bad\n",
      &schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(schema.num_event_types(), 1u)
      << "failed parse registered event types";
  EXPECT_EQ(schema.num_attributes(), 0u)
      << "failed parse registered attributes";
  EXPECT_TRUE(schema.FindEventType("DELL").status().code() ==
              StatusCode::kNotFound);
}

TEST(TraceRobustnessTest, SuccessfulParseCommitsSchema) {
  Schema schema;
  auto result = ParseTrace("DELL,5,price=1\n", &schema);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(schema.FindEventType("DELL").ok());
  EXPECT_TRUE(schema.FindAttribute("price").ok());
}

TEST(TraceRobustnessTest, MissingFileIsIoError) {
  Schema schema;
  auto result = ReadTraceFile("/nonexistent/trace.txt", &schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TraceRobustnessTest, ValuesRoundTripThroughFormat) {
  Schema schema;
  auto parsed = ParseTrace(
      "DELL,5,price=31.25,volume=100,note=plain\n", &schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string formatted = FormatTrace(*parsed, schema);
  Schema schema2;
  auto reparsed = ParseTrace(formatted, &schema2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), 1u);
  const Event& e = (*reparsed)[0];
  EXPECT_EQ(e.FindAttr(*schema2.FindAttribute("price"))->AsDouble(), 31.25);
  EXPECT_EQ(e.FindAttr(*schema2.FindAttribute("volume"))->AsInt64(), 100);
  EXPECT_EQ(e.FindAttr(*schema2.FindAttribute("note"))->AsString(), "plain");
}

}  // namespace
}  // namespace aseq
