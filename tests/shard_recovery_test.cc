// Sharded crash recovery: a sharded run that checkpoints periodically,
// dies, and is restored into a *freshly built* sharded policy must replay
// the trace tail to outputs and merged stats byte-identical to both the
// uninterrupted serial run and the uninterrupted sharded run. The
// multi-shard snapshot container must also reject mismatched shard counts
// and non-sharded snapshots up front.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "ckpt/snapshot.h"
#include "engine/runtime.h"
#include "exec/execution_policy.h"
#include "exec/multi_execution_policy.h"
#include "fault/fault.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

constexpr size_t kShards = 3;
constexpr size_t kBatchSize = 64;
constexpr size_t kCheckpointEvery = 500;

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].ts, got[i].ts) << context << " output#" << i;
    EXPECT_EQ(ref[i].seq, got[i].seq) << context << " output#" << i;
    ASSERT_EQ(ref[i].group.has_value(), got[i].group.has_value())
        << context << " output#" << i;
    if (ref[i].group.has_value()) {
      EXPECT_TRUE(ref[i].group->Equals(*got[i].group))
          << context << " output#" << i;
    }
    EXPECT_TRUE(ref[i].value.Equals(got[i].value))
        << context << " output#" << i << ": " << ref[i].value.ToString()
        << " vs " << got[i].value.ToString();
  }
}

void ExpectStatsEqual(const EngineStats& ref, const EngineStats& got,
                      const std::string& context) {
  EXPECT_EQ(ref.events_processed, got.events_processed) << context;
  EXPECT_EQ(ref.outputs, got.outputs) << context;
  EXPECT_EQ(ref.work_units, got.work_units) << context;
  EXPECT_EQ(ref.objects.peak(), got.objects.peak()) << context;
  EXPECT_EQ(ref.objects.current(), got.objects.current()) << context;
}

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::unique_ptr<exec::ExecutionPolicy> MustMakeSharded(
    const CompiledQuery& cq, const RunOptions& options) {
  std::string reason;
  auto policy = exec::MakePolicy(
      cq, [&cq] { return CreateAseqEngine(cq); }, options, &reason);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_TRUE(reason.empty()) << reason;
  EXPECT_EQ((*policy)->num_shards(), options.num_shards);
  return std::move(policy).value();
}

/// The full kill/restore matrix over one query: run sharded with periodic
/// checkpoints, then for every snapshot written, restore a fresh sharded
/// policy from it, replay the tail, and require (prefix + tail) outputs
/// and final merged stats to equal the uninterrupted serial reference.
/// `fault_spec`, if set, is armed for the checkpointing run only (the
/// backlogged-queue variant injects slow workers with it).
void CheckShardedRecovery(const std::string& query_text,
                          const std::string& label,
                          const std::string& fault_spec = "") {
  auto c = MakeStock(321, 3000);
  CompiledQuery cq = MustCompile(&c->schema, query_text);

  // Serial uninterrupted reference.
  auto ref_engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_engine_or.ok());
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_engine_or).value();
  RunResult ref = Runtime::RunEvents(c->events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  // Sharded run with periodic checkpoints.
  const std::string dir = FreshDir("shard-recovery-" + label);
  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.checkpoint_every = kCheckpointEvery;
  options.checkpoint_dir = dir;
  auto full = MustMakeSharded(cq, options);
  if (!fault_spec.empty()) {
    ASSERT_TRUE(fault::Injector::Global().Arm(fault_spec, 5).ok())
        << fault_spec;
  }
  RunResult full_run = full->RunEvents(c->events);
  fault::Injector::Global().Disarm();
  ASSERT_TRUE(full_run.checkpoint_status.ok())
      << full_run.checkpoint_status.ToString();
  ASSERT_GT(full_run.checkpoints_written, 2u) << label;
  ExpectOutputsEqual(ref.outputs, full_run.outputs, label + " full-sharded");

  std::vector<std::string> snapshots;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    snapshots.push_back(entry.path().string());
  }
  std::sort(snapshots.begin(), snapshots.end());
  ASSERT_EQ(snapshots.size(), full_run.checkpoints_written) << label;

  for (const std::string& snapshot : snapshots) {
    const std::string context = label + " restore@" + snapshot;
    RunOptions tail_options;
    tail_options.num_shards = kShards;
    tail_options.batch_size = kBatchSize;
    auto resumed = MustMakeSharded(cq, tail_options);
    uint64_t offset = 0;
    Status restored = resumed->Restore(snapshot, &offset);
    ASSERT_TRUE(restored.ok()) << context << ": " << restored.ToString();
    ASSERT_LE(offset, c->events.size()) << context;

    std::vector<Event> tail(c->events.begin() + static_cast<ptrdiff_t>(offset),
                            c->events.end());
    RunResult tail_run = resumed->RunEvents(tail);

    // Prefix outputs (everything with seq < offset) + tail outputs must be
    // exactly the uninterrupted output sequence.
    std::vector<Output> combined;
    for (const Output& o : ref.outputs) {
      if (o.seq < offset) combined.push_back(o);
    }
    const size_t prefix_count = combined.size();
    combined.insert(combined.end(), tail_run.outputs.begin(),
                    tail_run.outputs.end());
    // The final snapshot may land exactly at end-of-stream — its tail is
    // legitimately empty; mid-stream snapshots must produce tail outputs.
    if (offset < c->events.size()) {
      EXPECT_GT(tail_run.outputs.size(), 0u) << context;
    }
    EXPECT_GT(prefix_count, 0u) << context;
    ExpectOutputsEqual(ref.outputs, combined, context);
    ExpectStatsEqual(ref_engine->stats(), resumed->stats(), context);
  }
}

TEST(ShardRecoveryTest, GroupedCount) {
  CheckShardedRecovery(
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
      "count");
}

TEST(ShardRecoveryTest, GroupedSum) {
  CheckShardedRecovery(
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.volume) "
      "WITHIN 800ms",
      "sum");
}

TEST(ShardRecoveryTest, GroupedNegation) {
  CheckShardedRecovery(
      "PATTERN SEQ(DELL, !QQQ, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 800ms",
      "negation");
}

TEST(ShardRecoveryTest, CheckpointWithBackloggedQueues) {
  // Injected slow workers keep the per-shard queues non-empty when the
  // checkpoint barrier is requested: the barrier must drain every queue
  // before capture, so the snapshots stay consistent and the whole
  // restore matrix still replays bit-exact.
  CheckShardedRecovery(
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
      "backlog", "worker.op@0:1:slow:2000,worker.op@1:1:slow:2000");
}

// ---------------------------------------------------------------------------
// Multi-query workloads: the kill/restore matrix over sharding engines
// ---------------------------------------------------------------------------

void ExpectMultiOutputsEqual(const std::vector<MultiOutput>& ref,
                             const std::vector<MultiOutput>& got,
                             const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].query_index, got[i].query_index)
        << context << " output#" << i;
    EXPECT_EQ(ref[i].output.ts, got[i].output.ts)
        << context << " output#" << i;
    EXPECT_EQ(ref[i].output.seq, got[i].output.seq)
        << context << " output#" << i;
    ASSERT_EQ(ref[i].output.group.has_value(), got[i].output.group.has_value())
        << context << " output#" << i;
    if (ref[i].output.group.has_value()) {
      EXPECT_TRUE(ref[i].output.group->Equals(*got[i].output.group))
          << context << " output#" << i;
    }
    EXPECT_TRUE(ref[i].output.value.Equals(got[i].output.value))
        << context << " output#" << i << ": " << ref[i].output.value.ToString()
        << " vs " << got[i].output.value.ToString();
  }
}

/// One factory per sharing strategy over a workload every strategy
/// accepts (positive-only COUNT, shared window, shared GROUP BY).
exec::MultiEngineFactory MultiFactory(
    const std::string& strategy, const std::vector<CompiledQuery>& queries) {
  if (strategy == "cc") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(
          auto e, ChopConnectEngine::Create(queries, PlanChopConnect(queries)));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "pretree") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, PreTreeEngine::Create(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "hybrid") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, HybridMultiEngine::Create(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  EXPECT_EQ(strategy, "nonshare") << "unknown strategy";
  return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
    ASEQ_ASSIGN_OR_RETURN(auto e, NonSharedEngine::CreateAseq(queries));
    return std::unique_ptr<MultiQueryEngine>(std::move(e));
  };
}

std::unique_ptr<exec::MultiExecutionPolicy> MustMakeMultiSharded(
    const std::vector<CompiledQuery>& queries,
    const exec::MultiEngineFactory& factory, const RunOptions& options) {
  std::string reason;
  auto policy = exec::MakeMultiPolicy(queries, factory, options, &reason);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_TRUE(reason.empty()) << reason;
  EXPECT_EQ((*policy)->num_shards(), options.num_shards);
  return std::move(policy).value();
}

/// CheckShardedRecovery over a whole workload: run the sharded sharing
/// engine with periodic checkpoints, then restore a freshly built sharded
/// policy from every snapshot written and require (prefix + tail) outputs
/// and final merged stats to equal the uninterrupted serial reference.
void CheckMultiShardedRecovery(const std::string& strategy,
                               const std::string& label) {
  auto c = MakeStock(421, 3000);
  std::vector<CompiledQuery> queries;
  for (const char* text :
       {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
        "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT "
        "WITHIN 800ms",
        "PATTERN SEQ(IPIX, DELL) GROUP BY traderId AGG COUNT WITHIN 800ms"}) {
    queries.push_back(MustCompile(&c->schema, text));
  }
  exec::MultiEngineFactory factory = MultiFactory(strategy, queries);

  // Serial uninterrupted reference.
  auto ref_engine_or = factory();
  ASSERT_TRUE(ref_engine_or.ok())
      << label << ": " << ref_engine_or.status().ToString();
  std::unique_ptr<MultiQueryEngine> ref_engine =
      std::move(ref_engine_or).value();
  MultiRunResult ref = Runtime::RunMultiEvents(c->events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  // Sharded run with periodic checkpoints.
  const std::string dir = FreshDir("multi-shard-recovery-" + label);
  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.checkpoint_every = kCheckpointEvery;
  options.checkpoint_dir = dir;
  auto full = MustMakeMultiSharded(queries, factory, options);
  MultiRunResult full_run = full->RunEvents(c->events);
  ASSERT_TRUE(full_run.checkpoint_status.ok())
      << full_run.checkpoint_status.ToString();
  ASSERT_GT(full_run.checkpoints_written, 2u) << label;
  ExpectMultiOutputsEqual(ref.outputs, full_run.outputs,
                          label + " full-sharded");

  std::vector<std::string> snapshots;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    snapshots.push_back(entry.path().string());
  }
  std::sort(snapshots.begin(), snapshots.end());
  ASSERT_EQ(snapshots.size(), full_run.checkpoints_written) << label;

  for (const std::string& snapshot : snapshots) {
    const std::string context = label + " restore@" + snapshot;
    RunOptions tail_options;
    tail_options.num_shards = kShards;
    tail_options.batch_size = kBatchSize;
    auto resumed = MustMakeMultiSharded(queries, factory, tail_options);
    uint64_t offset = 0;
    Status restored = resumed->Restore(snapshot, &offset);
    ASSERT_TRUE(restored.ok()) << context << ": " << restored.ToString();
    ASSERT_LE(offset, c->events.size()) << context;

    std::vector<Event> tail(c->events.begin() + static_cast<ptrdiff_t>(offset),
                            c->events.end());
    MultiRunResult tail_run = resumed->RunEvents(tail);

    std::vector<MultiOutput> combined;
    for (const MultiOutput& o : ref.outputs) {
      if (o.output.seq < offset) combined.push_back(o);
    }
    const size_t prefix_count = combined.size();
    combined.insert(combined.end(), tail_run.outputs.begin(),
                    tail_run.outputs.end());
    if (offset < c->events.size()) {
      EXPECT_GT(tail_run.outputs.size(), 0u) << context;
    }
    EXPECT_GT(prefix_count, 0u) << context;
    ExpectMultiOutputsEqual(ref.outputs, combined, context);
    ExpectStatsEqual(ref_engine->stats(), resumed->stats(), context);
  }
}

TEST(ShardRecoveryTest, MultiChopConnect) {
  CheckMultiShardedRecovery("cc", "multi-cc");
}

TEST(ShardRecoveryTest, MultiPreTree) {
  CheckMultiShardedRecovery("pretree", "multi-pretree");
}

TEST(ShardRecoveryTest, MultiHybrid) {
  CheckMultiShardedRecovery("hybrid", "multi-hybrid");
}

TEST(ShardRecoveryTest, MultiNonShare) {
  CheckMultiShardedRecovery("nonshare", "multi-nonshare");
}

TEST(ShardRecoveryTest, MultiSerialSnapshotRejectedBySharded) {
  // A serial multi-query snapshot must not restore into the sharded
  // container (and vice versa the name check catches it up front).
  auto c = MakeStock(422, 1500);
  std::vector<CompiledQuery> queries;
  queries.push_back(MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms"));
  exec::MultiEngineFactory factory = MultiFactory("pretree", queries);
  auto engine_or = factory();
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<MultiQueryEngine> engine = std::move(engine_or).value();
  Runtime::RunMultiEvents(c->events, engine.get());
  const std::string path =
      ::testing::TempDir() + "/multi-shard-recovery-serial.aseqckpt";
  ASSERT_TRUE(ckpt::SaveMultiSnapshot(path, *engine, c->events.size()).ok());

  RunOptions options;
  options.num_shards = kShards;
  auto resumed = MustMakeMultiSharded(queries, factory, options);
  uint64_t offset = 0;
  Status restored = resumed->Restore(path, &offset);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.ToString().find("Sharded["), std::string::npos)
      << restored.ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Container validation
// ---------------------------------------------------------------------------

TEST(ShardRecoveryTest, ShardCountMismatchRejected) {
  auto c = MakeStock(322, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  const std::string dir = FreshDir("shard-recovery-mismatch");
  RunOptions options;
  options.num_shards = kShards;
  options.batch_size = kBatchSize;
  options.checkpoint_every = 700;
  options.checkpoint_dir = dir;
  auto policy = MustMakeSharded(cq, options);
  RunResult run = policy->RunEvents(c->events);
  ASSERT_GT(run.checkpoints_written, 0u);
  const std::string snapshot =
      ckpt::SnapshotPathForOffset(dir, run.last_checkpoint_offset);

  RunOptions other;
  other.num_shards = kShards + 1;
  auto resumed = MustMakeSharded(cq, other);
  uint64_t offset = 0;
  Status restored = resumed->Restore(snapshot, &offset);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.ToString().find("rerun with --shards"),
            std::string::npos)
      << restored.ToString();
}

TEST(ShardRecoveryTest, SerialSnapshotRejectedBySharded) {
  auto c = MakeStock(323, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  auto engine_or = CreateAseqEngine(cq);
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<QueryEngine> engine = std::move(engine_or).value();
  Runtime::RunEvents(c->events, engine.get());
  const std::string path =
      ::testing::TempDir() + "/shard-recovery-serial.aseqckpt";
  ASSERT_TRUE(ckpt::SaveEngineSnapshot(path, *engine, c->events.size()).ok());

  RunOptions options;
  options.num_shards = kShards;
  auto resumed = MustMakeSharded(cq, options);
  uint64_t offset = 0;
  Status restored = resumed->Restore(path, &offset);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.ToString().find("Sharded["), std::string::npos)
      << restored.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aseq
