// Integration-scale agreement sweeps: A-Seq vs the stack-based baseline on
// thousand-event synthetic streams, parameterized over pattern shapes and
// window sizes. The brute-force oracle cannot reach this scale; the two
// independently implemented engines must still agree on every delivered
// result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"

namespace aseq {
namespace {

struct SweepCase {
  std::string label;
  std::string query;  // window appended by the test
};

class AgreementSweepTest
    : public ::testing::TestWithParam<std::tuple<SweepCase, int>> {};

TEST_P(AgreementSweepTest, ASeqMatchesStackBaseline) {
  const SweepCase& sc = std::get<0>(GetParam());
  const int window_ms = std::get<1>(GetParam());

  Schema schema;
  StockStreamOptions options;
  options.seed = 1234;
  options.num_events = 1500;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);

  Analyzer analyzer(&schema);
  std::string text =
      sc.query + " WITHIN " + std::to_string(window_ms) + "ms";
  auto compiled = analyzer.AnalyzeText(text);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto aseq = CreateAseqEngine(*compiled);
  ASSERT_TRUE(aseq.ok()) << aseq.status().ToString();
  StackEngine stack(*compiled);

  RunResult a = Runtime::RunEvents(events, aseq->get());
  RunResult s = Runtime::RunEvents(events, &stack);
  ASSERT_EQ(a.outputs.size(), s.outputs.size()) << text;
  size_t nonzero = 0;
  for (size_t i = 0; i < a.outputs.size(); ++i) {
    const Value& av = a.outputs[i].value;
    const Value& sv = s.outputs[i].value;
    bool same = av.Equals(sv);
    if (!same && av.is_numeric() && sv.is_numeric()) {
      double x = av.ToDouble(), y = sv.ToDouble();
      double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
      same = std::fabs(x - y) <= 1e-9 * scale;
    }
    ASSERT_TRUE(same) << text << " output#" << i << ": " << av.ToString()
                      << " vs " << sv.ToString();
    if (!av.is_null() && !(av.type() == ValueType::kInt64 && av.AsInt64() == 0)) {
      ++nonzero;
    }
  }
  // Guard against vacuous agreement: wide-enough windows must match.
  if (window_ms >= 400) {
    EXPECT_GT(nonzero, 0u) << text << " produced only empty results";
  }
}

std::vector<SweepCase> SweepCases() {
  return {
      {"len2", "PATTERN SEQ(DELL, IPIX) AGG COUNT"},
      {"len3", "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT"},
      {"len4", "PATTERN SEQ(DELL, IPIX, AMAT, QQQ) AGG COUNT"},
      {"neg", "PATTERN SEQ(DELL, IPIX, !QQQ, AMAT) AGG COUNT"},
      {"neg_first_gap", "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT"},
      {"sum", "PATTERN SEQ(DELL, IPIX, AMAT) AGG SUM(IPIX.volume)"},
      {"avg", "PATTERN SEQ(DELL, IPIX) AGG AVG(DELL.volume)"},
      {"min", "PATTERN SEQ(DELL, IPIX, AMAT) AGG MIN(AMAT.price)"},
      {"max", "PATTERN SEQ(DELL, IPIX) AGG MAX(IPIX.price)"},
      {"equiv",
       "PATTERN SEQ(DELL, IPIX) WHERE DELL.traderId = IPIX.traderId "
       "AGG COUNT"},
      {"group",
       "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT"},
      {"local", "PATTERN SEQ(DELL, IPIX) WHERE DELL.volume > 5000 AGG COUNT"},
      {"neg_local",
       "PATTERN SEQ(DELL, !QQQ, AMAT) WHERE QQQ.volume > 5000 AGG COUNT"},
      {"equiv_neg",
       "PATTERN SEQ(DELL, !QQQ, AMAT) WHERE DELL.traderId = QQQ.traderId = "
       "AMAT.traderId AGG COUNT"},
  };
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<SweepCase, int>>& info) {
  return std::get<0>(info.param).label + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AgreementSweepTest,
                         ::testing::Combine(::testing::ValuesIn(SweepCases()),
                                            ::testing::Values(50, 200, 400,
                                                              800)),
                         SweepName);

}  // namespace
}  // namespace aseq
