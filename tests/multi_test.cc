#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/ecube_engine.h"
#include "common/rng.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/workload.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

std::vector<CompiledQuery> Compile(Schema* schema,
                                   const std::vector<Query>& queries) {
  Analyzer analyzer(schema);
  std::vector<CompiledQuery> out;
  for (const Query& q : queries) {
    auto result = analyzer.Analyze(q);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.push_back(std::move(result).value());
  }
  return out;
}

/// Random stream over the workload's type universe.
std::vector<Event> WorkloadStream(const SharedWorkload& workload,
                                  Schema* schema, uint64_t seed, size_t n,
                                  int64_t max_gap = 50) {
  StreamConfig config = MakeWorkloadStreamConfig(workload, seed, n, 0, max_gap);
  StreamGenerator gen(config, schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);
  return events;
}

/// Reference: per-query single A-Seq outputs, keyed (query, seq).
std::map<std::pair<size_t, SeqNum>, int64_t> ReferenceOutputs(
    const std::vector<CompiledQuery>& queries,
    const std::vector<Event>& events) {
  std::map<std::pair<size_t, SeqNum>, int64_t> ref;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto engine = CreateAseqEngine(queries[qi]);
    EXPECT_TRUE(engine.ok());
    RunResult result = Runtime::RunEvents(events, engine->get());
    for (const Output& output : result.outputs) {
      ref[{qi, output.seq}] = output.value.AsInt64();
    }
  }
  return ref;
}

void ExpectMatchesReference(
    const std::map<std::pair<size_t, SeqNum>, int64_t>& ref,
    const std::vector<MultiOutput>& outputs, const std::string& context) {
  std::map<std::pair<size_t, SeqNum>, int64_t> got;
  for (const MultiOutput& mo : outputs) {
    got[{mo.query_index, mo.output.seq}] = mo.output.value.AsInt64();
  }
  EXPECT_EQ(ref.size(), got.size()) << context;
  for (const auto& [key, value] : ref) {
    auto it = got.find(key);
    if (it == got.end()) {
      ADD_FAILURE() << context << ": missing output for query "
                    << key.first << " at seq " << key.second;
      continue;
    }
    EXPECT_EQ(value, it->second)
        << context << ": query " << key.first << " seq " << key.second;
  }
}

// --------------------------------------------------------------------------
// NonSharedEngine
// --------------------------------------------------------------------------

TEST(NonSharedEngineTest, MatchesSingleQueryEngines) {
  Schema schema;
  SharedWorkload workload = MakePrefixSharedWorkload(3, 2, 4, 2000);
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  std::vector<Event> events = WorkloadStream(workload, &schema, 11, 400);
  auto ref = ReferenceOutputs(queries, events);

  auto engine = NonSharedEngine::CreateAseq(queries);
  ASSERT_TRUE(engine.ok());
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, "nonshared-aseq");

  auto stack = NonSharedEngine::CreateStackBased(queries);
  MultiRunResult result2 = Runtime::RunMultiEvents(events, stack.get());
  ExpectMatchesReference(ref, result2.outputs, "nonshared-stack");
}

// --------------------------------------------------------------------------
// PreTreeEngine (Sec. 4.1)
// --------------------------------------------------------------------------

TEST(PreTreeEngineTest, PaperFigure9WorkloadShapes) {
  // Q1..Q4 of Example 6/7 share prefixes at several depths.
  Schema schema;
  std::vector<Query> queries;
  auto add = [&](std::vector<std::string> names) {
    Query q;
    q.pattern = Pattern::FromNames(names);
    q.agg = AggregateSpec::Count();
    q.window_ms = 5000;
    queries.push_back(q);
  };
  add({"VKindle", "BKindle", "VCase", "BCase"});
  add({"VKindle", "BKindle", "VKindleFire"});
  add({"VKindle", "BKindle", "VCase", "BCase", "VeBook", "BeBook"});
  add({"VKindle", "BKindle", "VCase", "BCase", "VLight", "BLight"});
  std::vector<CompiledQuery> compiled = Compile(&schema, queries);

  auto engine = PreTreeEngine::Create(compiled);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // The trie shares: 1 (BKindle) + 2 (VCase, BCase) below the start, then
  // branches: VKindleFire, (VeBook, BeBook), (VLight, BLight).
  EXPECT_EQ((*engine)->num_trie_nodes(), 3u + 1u + 2u + 2u);

  // Feed a stream covering all the types and compare with per-query A-Seq.
  SharedWorkload workload;
  workload.queries = queries;
  for (const char* t : {"VKindle", "BKindle", "VCase", "BCase", "VKindleFire",
                        "VeBook", "BeBook", "VLight", "BLight"}) {
    workload.all_types.push_back(t);
  }
  std::vector<Event> events = WorkloadStream(workload, &schema, 5, 500);
  auto ref = ReferenceOutputs(compiled, events);
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, "pretree-fig9");
}

TEST(PreTreeEngineTest, RandomizedPrefixWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Schema schema;
    SharedWorkload workload =
        MakePrefixSharedWorkload(4, 3, 5, 1500);
    std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
    std::vector<Event> events = WorkloadStream(workload, &schema, seed, 300);
    auto ref = ReferenceOutputs(queries, events);
    auto engine = PreTreeEngine::Create(queries);
    ASSERT_TRUE(engine.ok());
    MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
    ExpectMatchesReference(ref, result.outputs,
                           "pretree seed=" + std::to_string(seed));
  }
}

TEST(PreTreeEngineTest, MultipleStartTypes) {
  Schema schema;
  std::vector<Query> queries;
  for (auto names : std::vector<std::vector<std::string>>{
           {"A", "B", "C"}, {"A", "B", "D"}, {"E", "B", "C"}}) {
    Query q;
    q.pattern = Pattern::FromNames(names);
    q.agg = AggregateSpec::Count();
    q.window_ms = 1000;
    queries.push_back(q);
  }
  std::vector<CompiledQuery> compiled = Compile(&schema, queries);
  auto engine = PreTreeEngine::Create(compiled);
  ASSERT_TRUE(engine.ok());

  SharedWorkload workload;
  workload.queries = queries;
  workload.all_types = {"A", "B", "C", "D", "E"};
  std::vector<Event> events = WorkloadStream(workload, &schema, 9, 300, 30);
  auto ref = ReferenceOutputs(compiled, events);
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, "pretree-multistart");
}

TEST(PreTreeEngineTest, RejectsUnsupportedQueries) {
  Schema schema;
  std::vector<CompiledQuery> with_neg;
  with_neg.push_back(MustCompile(&schema, "PATTERN SEQ(A, !X, B) WITHIN 1s"));
  EXPECT_FALSE(PreTreeEngine::Create(with_neg).ok());

  std::vector<CompiledQuery> no_window;
  no_window.push_back(MustCompile(&schema, "PATTERN SEQ(A, B)"));
  EXPECT_FALSE(PreTreeEngine::Create(no_window).ok());

  std::vector<CompiledQuery> mixed_windows;
  mixed_windows.push_back(MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s"));
  mixed_windows.push_back(MustCompile(&schema, "PATTERN SEQ(A, C) WITHIN 2s"));
  EXPECT_FALSE(PreTreeEngine::Create(mixed_windows).ok());
}

// --------------------------------------------------------------------------
// Chop plans
// --------------------------------------------------------------------------

TEST(ChopPlanTest, GreedyPlannerFindsSharedSubstring) {
  Schema schema;
  SharedWorkload workload = MakeSubstringSharedWorkload(3, 2, 3, 1, 1000);
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  ChopPlan plan = PlanChopConnect(queries);
  // Each query: [private prefix][shared][private tail] -> 3 segments; the
  // shared segment appears once.
  ASSERT_EQ(plan.query_segments.size(), 3u);
  for (const auto& segs : plan.query_segments) {
    EXPECT_EQ(segs.size(), 3u);
  }
  EXPECT_EQ(plan.segments.size(), 1u + 3u * 2u);  // shared + 6 private
  EXPECT_FALSE(plan.ToString(schema).empty());
}

TEST(ChopPlanTest, TrivialPlanOneSegmentPerQuery) {
  Schema schema;
  SharedWorkload workload = MakePrefixSharedWorkload(2, 2, 4, 1000);
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  ChopPlan plan = TrivialPlan(queries);
  ASSERT_EQ(plan.query_segments.size(), 2u);
  EXPECT_EQ(plan.query_segments[0].size(), 1u);
  EXPECT_EQ(plan.segments.size(), 2u);
}

TEST(ChopPlanTest, NoSharingFallsBackToTrivial) {
  Schema schema;
  std::vector<CompiledQuery> queries;
  queries.push_back(MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s"));
  queries.push_back(MustCompile(&schema, "PATTERN SEQ(C, D) WITHIN 1s"));
  ChopPlan plan = PlanChopConnect(queries);
  EXPECT_EQ(plan.query_segments[0].size(), 1u);
  EXPECT_EQ(plan.query_segments[1].size(), 1u);
}

// --------------------------------------------------------------------------
// ChopConnectEngine (Sec. 4.2)
// --------------------------------------------------------------------------

void RunChopConnectCase(const SharedWorkload& workload, uint64_t seed,
                        size_t n, const std::string& context) {
  Schema schema;
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  std::vector<Event> events = WorkloadStream(workload, &schema, seed, n);
  auto ref = ReferenceOutputs(queries, events);
  ChopPlan plan = PlanChopConnect(queries);
  auto engine = ChopConnectEngine::Create(queries, plan);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, context);
}

TEST(ChopConnectEngineTest, TailSharedWorkload) {
  // Shared substring at the tail (prefix private): Q5-style sharing.
  RunChopConnectCase(MakeSubstringSharedWorkload(3, 2, 2, 0, 1500), 21, 350,
                     "cc-tail");
}

TEST(ChopConnectEngineTest, MiddleSharedWorkload) {
  RunChopConnectCase(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 22, 350,
                     "cc-middle");
}

TEST(ChopConnectEngineTest, HeadSharedWorkload) {
  RunChopConnectCase(MakeSubstringSharedWorkload(3, 0, 2, 2, 1500), 23, 350,
                     "cc-head");
}

TEST(ChopConnectEngineTest, MultiConnectThreeSegments) {
  // prefix(2) + shared(2) + tail(2): three segments chain per query,
  // exercising the multi-connect snapshot recursion (Fig. 11).
  RunChopConnectCase(MakeSubstringSharedWorkload(3, 2, 2, 2, 2500), 24, 400,
                     "cc-multiconnect");
}

TEST(ChopConnectEngineTest, RandomSeedsSweep) {
  for (uint64_t seed : {31u, 32u, 33u, 34u}) {
    RunChopConnectCase(MakeSubstringSharedWorkload(2, 1, 3, 1, 1800), seed,
                       300, "cc-sweep seed=" + std::to_string(seed));
  }
}

TEST(ChopConnectEngineTest, TrivialPlanEqualsNonShared) {
  Schema schema;
  SharedWorkload workload = MakeSubstringSharedWorkload(2, 1, 2, 1, 1200);
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  std::vector<Event> events = WorkloadStream(workload, &schema, 41, 250);
  auto ref = ReferenceOutputs(queries, events);
  auto engine = ChopConnectEngine::Create(queries, TrivialPlan(queries));
  ASSERT_TRUE(engine.ok());
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, "cc-trivial");
}

TEST(ChopConnectEngineTest, SnapshotExpiryExcludesDeadTags) {
  // The Fig. 10 scenario: sub1 = (A, B, C), sub2 = (D, E). A snapshot row
  // whose full-sequence START expires between the CNET (D) arrival and the
  // TRIG (E) arrival must not contribute.
  Schema schema;
  Analyzer analyzer(&schema);
  Query q;
  q.pattern = Pattern::FromNames({"A", "B", "C", "D", "E"});
  q.agg = AggregateSpec::Count();
  q.window_ms = 10000;
  std::vector<CompiledQuery> queries = {std::move(analyzer.Analyze(q)).value()};

  ChopPlan plan;
  plan.segments.push_back({*schema.FindEventType("A"),
                           *schema.FindEventType("B"),
                           *schema.FindEventType("C")});
  plan.segments.push_back(
      {*schema.FindEventType("D"), *schema.FindEventType("E")});
  plan.query_segments.push_back({0, 1});
  auto engine = ChopConnectEngine::Create(queries, plan);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->num_segments(), 2u);

  StreamBuilder b(&schema);
  b.Add("A", 0)       // a1, expires at 10000
      .Add("A", 2000)  // a2, expires at 12000
      .Add("B", 3000)
      .Add("C", 4000)   // sub1 counts: a1 -> 1, a2 -> 1
      .Add("D", 5000)   // CNET: snapshot {a1: 1, a2: 1}
      .Add("E", 10000); // TRIG: a1 expired exactly now -> only a2 counts
  MultiRunResult result =
      Runtime::RunMultiEvents(b.Build(), engine->get());
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].output.value.AsInt64(), 1);

  // Sanity: one ms earlier both rows are live (fresh engine, E at 9999).
  auto engine2 = ChopConnectEngine::Create(queries, plan);
  StreamBuilder b2(&schema);
  b2.Add("A", 0)
      .Add("A", 2000)
      .Add("B", 3000)
      .Add("C", 4000)
      .Add("D", 5000)
      .Add("E", 9999);
  MultiRunResult result2 =
      Runtime::RunMultiEvents(b2.Build(), engine2->get());
  ASSERT_EQ(result2.outputs.size(), 1u);
  EXPECT_EQ(result2.outputs[0].output.value.AsInt64(), 2);
}

TEST(ChopConnectEngineTest, SnapshotTakenBeforeCnetArrivalCounts) {
  // Lemma 7: only sub1 matches constructed *before* the CNET instance
  // arrives connect to it — a C arriving after D must not count for that D.
  Schema schema;
  Analyzer analyzer(&schema);
  Query q;
  q.pattern = Pattern::FromNames({"A", "B", "C", "D", "E"});
  q.agg = AggregateSpec::Count();
  q.window_ms = 10000;
  std::vector<CompiledQuery> queries = {std::move(analyzer.Analyze(q)).value()};
  ChopPlan plan;
  plan.segments.push_back({*schema.FindEventType("A"),
                           *schema.FindEventType("B"),
                           *schema.FindEventType("C")});
  plan.segments.push_back(
      {*schema.FindEventType("D"), *schema.FindEventType("E")});
  plan.query_segments.push_back({0, 1});
  auto engine = ChopConnectEngine::Create(queries, plan);

  StreamBuilder b(&schema);
  b.Add("A", 0)
      .Add("B", 100)
      .Add("D", 200)   // CNET before any sub1 match exists
      .Add("C", 300)   // sub1 completes only now
      .Add("E", 400);  // (a,b,c,d,e) is NOT a valid sequence (c after d)
  MultiRunResult result = Runtime::RunMultiEvents(b.Build(), engine->get());
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].output.value.AsInt64(), 0);
}

TEST(ChopConnectEngineTest, RejectsBadPlans) {
  Schema schema;
  SharedWorkload workload = MakeSubstringSharedWorkload(2, 1, 2, 1, 1200);
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  ChopPlan bad;  // empty
  EXPECT_FALSE(ChopConnectEngine::Create(queries, bad).ok());
  ChopPlan wrong = TrivialPlan(queries);
  wrong.query_segments[0] = {1};  // wrong segment for query 0
  EXPECT_FALSE(ChopConnectEngine::Create(queries, wrong).ok());
}

// --------------------------------------------------------------------------
// EcubeEngine
// --------------------------------------------------------------------------

void RunEcubeCase(const SharedWorkload& workload, uint64_t seed, size_t n,
                  const std::string& context) {
  Schema schema;
  std::vector<CompiledQuery> queries = Compile(&schema, workload.queries);
  std::vector<Event> events = WorkloadStream(workload, &schema, seed, n);
  auto ref = ReferenceOutputs(queries, events);
  std::vector<EventTypeId> shared;
  for (const std::string& name : workload.shared_types) {
    shared.push_back(*schema.FindEventType(name));
  }
  auto engine = EcubeEngine::Create(queries, shared);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MultiRunResult result = Runtime::RunMultiEvents(events, engine->get());
  ExpectMatchesReference(ref, result.outputs, context);
}

TEST(EcubeEngineTest, TailSharedWorkload) {
  RunEcubeCase(MakeSubstringSharedWorkload(3, 2, 2, 0, 1500), 51, 300,
               "ecube-tail");
}

TEST(EcubeEngineTest, MiddleSharedWorkload) {
  RunEcubeCase(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 52, 300,
               "ecube-middle");
}

TEST(EcubeEngineTest, HeadSharedWorkload) {
  RunEcubeCase(MakeSubstringSharedWorkload(3, 0, 2, 2, 1500), 53, 300,
               "ecube-head");
}

TEST(EcubeEngineTest, SingleTypeShared) {
  RunEcubeCase(MakeSubstringSharedWorkload(2, 1, 1, 1, 1200), 54, 250,
               "ecube-single");
}

TEST(EcubeEngineTest, RejectsUnsupported) {
  Schema schema;
  std::vector<CompiledQuery> queries;
  queries.push_back(MustCompile(&schema, "PATTERN SEQ(A, !X, B) WITHIN 1s"));
  EventTypeId a = *schema.FindEventType("A");
  EXPECT_FALSE(EcubeEngine::Create(queries, {a}).ok());
  std::vector<CompiledQuery> no_sub;
  no_sub.push_back(MustCompile(&schema, "PATTERN SEQ(C, D) WITHIN 1s"));
  EXPECT_FALSE(EcubeEngine::Create(no_sub, {a}).ok());
}

}  // namespace
}  // namespace aseq
