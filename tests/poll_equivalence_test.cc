// Poll() equivalence: polling an engine mid-stream must (a) report exactly
// what a fresh engine fed the same prefix would report, (b) never perturb
// the remainder of the run — outputs after a poll are byte-identical to a
// never-polled run — and (c) hold immediately after Restore(): a restored
// twin polls identically to the engine it snapshotted, before any tail
// event is fed.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "ckpt/snapshot.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].ts, got[i].ts) << context << " output#" << i;
    ASSERT_EQ(ref[i].group.has_value(), got[i].group.has_value())
        << context << " output#" << i;
    if (ref[i].group.has_value()) {
      EXPECT_TRUE(ref[i].group->Equals(*got[i].group))
          << context << " output#" << i << ": group "
          << ref[i].group->ToString() << " vs " << got[i].group->ToString();
    }
    EXPECT_TRUE(ref[i].value.Equals(got[i].value))
        << context << " output#" << i << ": " << ref[i].value.ToString()
        << " vs " << got[i].value.ToString();
  }
}

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

using EngineFactory = std::function<std::unique_ptr<QueryEngine>()>;

EngineFactory AseqFactory(const CompiledQuery& cq) {
  return [&cq] {
    auto engine = CreateAseqEngine(cq);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
  };
}

/// Offsets at which the run is polled (filtered to < n).
std::vector<size_t> PollOffsets(size_t n) {
  std::vector<size_t> offsets = {1, 37, 128, n / 2, n - 1};
  offsets.erase(
      std::remove_if(offsets.begin(), offsets.end(),
                     [n](size_t k) { return k == 0 || k >= n; }),
      offsets.end());
  return offsets;
}

/// Feeds the stream per-event; at each poll offset, compares Poll() against
/// a fresh engine fed the same prefix, then at the end compares the polled
/// run's outputs against a never-polled reference.
void CheckPoll(const EngineFactory& factory, const std::vector<Event>& events,
               const std::string& label) {
  auto ref_engine = factory();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  auto engine = factory();
  std::vector<Output> outputs;
  std::vector<Output> scratch;
  std::vector<size_t> poll_at = PollOffsets(events.size());
  size_t next_poll = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    scratch.clear();
    engine->OnEvent(events[i], &scratch);
    outputs.insert(outputs.end(), scratch.begin(), scratch.end());
    if (next_poll < poll_at.size() && i + 1 == poll_at[next_poll]) {
      ++next_poll;
      const Timestamp now = events[i].ts();
      const std::string context =
          label + " poll@" + std::to_string(i + 1);
      std::vector<Output> polled = engine->Poll(now);

      // A fresh engine fed exactly this prefix must poll identically.
      auto fresh = factory();
      std::vector<Output> sink;
      for (size_t j = 0; j <= i; ++j) fresh->OnEvent(events[j], &sink);
      ExpectOutputsEqual(fresh->Poll(now), polled, context);
    }
  }
  // The polls above must not have perturbed the run.
  ExpectOutputsEqual(ref.outputs, outputs, label + " post-poll outputs");
}

/// Runs to a kill offset, snapshots, restores a fresh twin, and requires
/// the twin's first Poll — before any tail event — to match the original's.
void CheckPollAfterRestore(const EngineFactory& factory,
                           const std::vector<Event>& events,
                           const std::string& label) {
  const size_t kill = events.size() / 2;
  auto engine = factory();
  std::vector<Output> sink;
  for (size_t i = 0; i < kill; ++i) engine->OnEvent(events[i], &sink);

  const std::string path =
      ::testing::TempDir() + "/poll-equiv-" + label + ".aseqckpt";
  ASSERT_TRUE(ckpt::SaveEngineSnapshot(path, *engine, kill).ok()) << label;
  auto twin = factory();
  uint64_t offset = 0;
  Status restored = ckpt::RestoreEngineSnapshot(path, twin.get(), &offset);
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.ToString();
  ASSERT_EQ(offset, kill) << label;
  std::remove(path.c_str());

  const Timestamp now = events[kill - 1].ts();
  ExpectOutputsEqual(engine->Poll(now), twin->Poll(now),
                     label + " poll-after-restore");
  // A poll moment later than the last arrival exercises poll-time expiry
  // on the restored window state.
  ExpectOutputsEqual(engine->Poll(now + 500), twin->Poll(now + 500),
                     label + " poll-after-restore+500ms");
}

struct PollCase {
  std::string label;
  std::string query;
};

const PollCase kAseqCases[] = {
    {"dpc-unbounded", "PATTERN SEQ(DELL, IPIX) AGG COUNT"},
    {"sem-windowed", "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms"},
    {"sem-negation", "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 800ms"},
    {"sem-sum",
     "PATTERN SEQ(DELL, IPIX) AGG SUM(IPIX.volume) WITHIN 800ms"},
    {"hpc-groupby",
     "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms"},
    {"hpc-equivalence",
     "PATTERN SEQ(DELL, IPIX) WHERE DELL.traderId = IPIX.traderId "
     "AGG COUNT WITHIN 800ms"},
};

TEST(PollEquivalenceTest, AseqEnginesMidStream) {
  auto c = MakeStock(221, 1500);
  for (const PollCase& pc : kAseqCases) {
    CompiledQuery cq = MustCompile(&c->schema, pc.query);
    CheckPoll(AseqFactory(cq), c->events, pc.label);
  }
}

TEST(PollEquivalenceTest, AseqEnginesAfterRestore) {
  auto c = MakeStock(222, 1500);
  for (const PollCase& pc : kAseqCases) {
    CompiledQuery cq = MustCompile(&c->schema, pc.query);
    CheckPollAfterRestore(AseqFactory(cq), c->events, pc.label);
  }
}

TEST(PollEquivalenceTest, StackEngineMidStream) {
  auto c = MakeStock(223, 1000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 800ms");
  CheckPoll([&cq] { return std::make_unique<StackEngine>(cq); }, c->events,
            "stack-join");
}

TEST(PollEquivalenceTest, StackEngineAfterRestore) {
  auto c = MakeStock(224, 1000);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms");
  CheckPollAfterRestore([&cq] { return std::make_unique<StackEngine>(cq); },
                        c->events, "stack-windowed");
}

// ---------------------------------------------------------------------------
// Multi-query engines: the same three poll contracts per sharing strategy
// ---------------------------------------------------------------------------

void ExpectMultiOutputsEqual(const std::vector<MultiOutput>& ref,
                             const std::vector<MultiOutput>& got,
                             const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].query_index, got[i].query_index)
        << context << " output#" << i;
    EXPECT_EQ(ref[i].output.ts, got[i].output.ts)
        << context << " output#" << i;
    ASSERT_EQ(ref[i].output.group.has_value(), got[i].output.group.has_value())
        << context << " output#" << i;
    if (ref[i].output.group.has_value()) {
      EXPECT_TRUE(ref[i].output.group->Equals(*got[i].output.group))
          << context << " output#" << i;
    }
    EXPECT_TRUE(ref[i].output.value.Equals(got[i].output.value))
        << context << " output#" << i << ": " << ref[i].output.value.ToString()
        << " vs " << got[i].output.value.ToString();
  }
}

using MultiFactory = std::function<std::unique_ptr<MultiQueryEngine>()>;

/// One factory per sharing strategy (expectation-failing, like
/// AseqFactory, so the test aborts loudly on a rejected workload).
MultiFactory MakeMultiFactory(const std::string& strategy,
                              const std::vector<CompiledQuery>& queries) {
  if (strategy == "cc") {
    return [&queries]() -> std::unique_ptr<MultiQueryEngine> {
      auto e = ChopConnectEngine::Create(queries, PlanChopConnect(queries));
      EXPECT_TRUE(e.ok()) << e.status().ToString();
      return std::move(e).value();
    };
  }
  if (strategy == "pretree") {
    return [&queries]() -> std::unique_ptr<MultiQueryEngine> {
      auto e = PreTreeEngine::Create(queries);
      EXPECT_TRUE(e.ok()) << e.status().ToString();
      return std::move(e).value();
    };
  }
  if (strategy == "hybrid") {
    return [&queries]() -> std::unique_ptr<MultiQueryEngine> {
      auto e = HybridMultiEngine::Create(queries);
      EXPECT_TRUE(e.ok()) << e.status().ToString();
      return std::move(e).value();
    };
  }
  EXPECT_EQ(strategy, "nonshare") << "unknown strategy";
  return [&queries]() -> std::unique_ptr<MultiQueryEngine> {
    auto e = NonSharedEngine::CreateAseq(queries);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  };
}

/// CheckPoll over a whole workload: mid-stream polls must match a fresh
/// engine fed the same prefix, and must not perturb the stream outputs.
void CheckMultiPoll(const MultiFactory& factory,
                    const std::vector<Event>& events,
                    const std::string& label) {
  auto ref_engine = factory();
  MultiRunResult ref = Runtime::RunMultiEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  auto engine = factory();
  std::vector<MultiOutput> outputs;
  std::vector<MultiOutput> scratch;
  std::vector<size_t> poll_at = PollOffsets(events.size());
  size_t next_poll = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    scratch.clear();
    engine->OnEvent(events[i], &scratch);
    outputs.insert(outputs.end(), scratch.begin(), scratch.end());
    if (next_poll < poll_at.size() && i + 1 == poll_at[next_poll]) {
      ++next_poll;
      const Timestamp now = events[i].ts();
      const std::string context = label + " poll@" + std::to_string(i + 1);
      std::vector<MultiOutput> polled = engine->Poll(now);

      auto fresh = factory();
      std::vector<MultiOutput> sink;
      for (size_t j = 0; j <= i; ++j) fresh->OnEvent(events[j], &sink);
      ExpectMultiOutputsEqual(fresh->Poll(now), polled, context);
    }
  }
  ExpectMultiOutputsEqual(ref.outputs, outputs, label + " post-poll outputs");
}

/// CheckPollAfterRestore over a whole workload, via the multi-query
/// snapshot container.
void CheckMultiPollAfterRestore(const MultiFactory& factory,
                                const std::vector<Event>& events,
                                const std::string& label) {
  const size_t kill = events.size() / 2;
  auto engine = factory();
  std::vector<MultiOutput> sink;
  for (size_t i = 0; i < kill; ++i) engine->OnEvent(events[i], &sink);

  const std::string path =
      ::testing::TempDir() + "/poll-equiv-" + label + ".aseqckpt";
  ASSERT_TRUE(ckpt::SaveMultiSnapshot(path, *engine, kill).ok()) << label;
  auto twin = factory();
  uint64_t offset = 0;
  Status restored = ckpt::RestoreMultiSnapshot(path, twin.get(), &offset);
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.ToString();
  ASSERT_EQ(offset, kill) << label;
  std::remove(path.c_str());

  const Timestamp now = events[kill - 1].ts();
  ExpectMultiOutputsEqual(engine->Poll(now), twin->Poll(now),
                          label + " poll-after-restore");
  ExpectMultiOutputsEqual(engine->Poll(now + 500), twin->Poll(now + 500),
                          label + " poll-after-restore+500ms");
}

/// A workload every sharing strategy accepts: positive-only COUNT
/// patterns, one shared window, one shared GROUP BY attribute.
const std::vector<std::string>& SharedWorkloadTexts() {
  static const std::vector<std::string> kTexts = {
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
      "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 800ms",
      "PATTERN SEQ(IPIX, DELL) GROUP BY traderId AGG COUNT WITHIN 800ms",
  };
  return kTexts;
}

std::vector<CompiledQuery> CompileSharedWorkload(Schema* schema) {
  std::vector<CompiledQuery> queries;
  for (const std::string& text : SharedWorkloadTexts()) {
    queries.push_back(MustCompile(schema, text));
  }
  return queries;
}

const char* const kSharingStrategies[] = {"cc", "pretree", "hybrid",
                                          "nonshare"};

TEST(PollEquivalenceTest, MultiEnginesMidStream) {
  auto c = MakeStock(225, 1200);
  std::vector<CompiledQuery> queries = CompileSharedWorkload(&c->schema);
  for (const char* strategy : kSharingStrategies) {
    CheckMultiPoll(MakeMultiFactory(strategy, queries), c->events,
                   std::string("multi-") + strategy);
  }
}

TEST(PollEquivalenceTest, MultiEnginesAfterRestore) {
  auto c = MakeStock(226, 1200);
  std::vector<CompiledQuery> queries = CompileSharedWorkload(&c->schema);
  for (const char* strategy : kSharingStrategies) {
    CheckMultiPollAfterRestore(MakeMultiFactory(strategy, queries), c->events,
                               std::string("multi-restore-") + strategy);
  }
}

TEST(PollEquivalenceTest, MultiNegationMixMidStream) {
  // Negation routes through the hybrid's per-query parts; polling must
  // still interleave all queries' results in workload order.
  auto c = MakeStock(227, 1200);
  std::vector<CompiledQuery> queries;
  queries.push_back(MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms"));
  queries.push_back(MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, !QQQ, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 800ms"));
  CheckMultiPoll(MakeMultiFactory("hybrid", queries), c->events,
                 "multi-negation-hybrid");
  CheckMultiPoll(MakeMultiFactory("nonshare", queries), c->events,
                 "multi-negation-nonshare");
}

}  // namespace
}  // namespace aseq
