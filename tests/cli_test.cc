#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "cli/flags.h"

namespace aseq {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

// --------------------------------------------------------------------------
// FlagSet
// --------------------------------------------------------------------------

TEST(FlagSetTest, ParsesPositionalAndFlags) {
  auto fs = FlagSet::Parse({"run", "--query", "PATTERN SEQ(A)", "--quiet",
                            "--seed=7"});
  ASSERT_TRUE(fs.ok());
  ASSERT_EQ(fs->positional().size(), 1u);
  EXPECT_EQ(fs->positional()[0], "run");
  EXPECT_EQ(fs->GetString("query"), "PATTERN SEQ(A)");
  EXPECT_TRUE(fs->GetBool("quiet"));
  EXPECT_EQ(*fs->GetInt("seed", 0), 7);
  EXPECT_EQ(*fs->GetInt("missing", 42), 42);
}

TEST(FlagSetTest, BadIntegerIsError) {
  auto fs = FlagSet::Parse({"run", "--seed", "abc"});
  ASSERT_TRUE(fs.ok());
  EXPECT_FALSE(fs->GetInt("seed", 0).ok());
}

TEST(FlagSetTest, PositionalAfterFlagsRejected) {
  EXPECT_FALSE(FlagSet::Parse({"run", "--seed", "7", "oops"}).ok());
  // A lone token after a bare flag is consumed as that flag's value.
  auto fs = FlagSet::Parse({"run", "--quiet", "oops"});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->GetString("quiet"), "oops");
}

TEST(FlagSetTest, CheckKnownFlagsTyposCaught) {
  auto fs = FlagSet::Parse({"run", "--sede", "7"});
  ASSERT_TRUE(fs.ok());
  Status st = fs->CheckKnown({"seed"});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sede"), std::string::npos);
}

// --------------------------------------------------------------------------
// Commands
// --------------------------------------------------------------------------

TEST(CliTest, NoCommandPrintsUsage) {
  CliResult r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, VersionCommand) {
  CliResult r = RunTool({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("aseq 1.0.0"), std::string::npos);
  EXPECT_NE(r.out.find("SIGMOD 2014"), std::string::npos);
}

TEST(CliTest, UnknownCommand) {
  CliResult r = RunTool({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, RunOnStockStream) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "2000", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("A-Seq(SEM)"), std::string::npos);
  EXPECT_NE(r.out.find("events:        2000"), std::string::npos);
}

TEST(CliTest, RunWithStackEngine) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "1000", "--engine", "stack", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("StackBased"), std::string::npos);
}

TEST(CliTest, RunWithSlackWrapsEngine) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "1000", "--slack", "50", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("+KSlack"), std::string::npos);
}

TEST(CliTest, RunRequiresExactlyOneSource) {
  CliResult r = RunTool({"run", "--query", "PATTERN SEQ(A, B)"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("exactly one source"), std::string::npos);
  CliResult r2 = RunTool({"run", "--query", "PATTERN SEQ(A, B)", "--stock",
                      "10", "--clicks", "10"});
  EXPECT_EQ(r2.code, 1);
}

TEST(CliTest, RunRejectsBadQuery) {
  CliResult r = RunTool({"run", "--query", "SEQ(A, B)", "--stock", "10"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("ParseError"), std::string::npos);
}

TEST(CliTest, RunRejectsUnknownFlag) {
  CliResult r = RunTool({"run", "--query", "PATTERN SEQ(A, B)", "--stonk", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--stonk"), std::string::npos);
}

TEST(CliTest, ExplainDescribesQuery) {
  CliResult r = RunTool(
      {"explain", "--query",
       "PATTERN SEQ(A, !X, B) WHERE A.id = X.id = B.id AGG COUNT WITHIN 5s"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("negation: !X resets the length-1 prefix"),
            std::string::npos);
  EXPECT_NE(r.out.find("equivalence on attribute 'id'"), std::string::npos);
  EXPECT_NE(r.out.find("A-Seq(HPC)"), std::string::npos);
}

TEST(CliTest, ExplainFlagsJoinQueries) {
  CliResult r = RunTool({"explain", "--query",
                     "PATTERN SEQ(A, B) WHERE A.x < B.x WITHIN 1s"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("StackBased (join predicates)"), std::string::npos);
}

TEST(CliTest, GenerateThenRunTrace) {
  std::string path = ::testing::TempDir() + "/aseq_cli_trace.csv";
  CliResult gen = RunTool({"generate", "--clicks", "500", "--out", path});
  EXPECT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote 500 events"), std::string::npos);

  CliResult run = RunTool({"run", "--query",
                       "PATTERN SEQ(ViewKindle, BuyKindle) AGG COUNT "
                       "WITHIN 10s",
                       "--trace", path, "--quiet"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("events:        500"), std::string::npos);
}

TEST(CliTest, GenerateRequiresOut) {
  CliResult r = RunTool({"generate", "--clicks", "10"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(CliTest, CompareAgreesAndReportsSpeedup) {
  CliResult r = RunTool({"compare", "--query",
                     "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 500",
                     "--stock", "2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("result mismatches: 0"), std::string::npos);
  EXPECT_NE(r.out.find("speedup:"), std::string::npos);
}

TEST(CliTest, RunEmitOnChangeWrapsEngine) {
  CliResult r = RunTool({"run", "--query",
                         "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s",
                         "--stock", "1000", "--emit-on-change", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("+OnChange"), std::string::npos);
}

TEST(CliTest, WorkloadRunsAllStrategies) {
  std::string path = ::testing::TempDir() + "/aseq_cli_queries.txt";
  {
    std::ofstream f(path);
    f << "# a small prefix-sharing workload\n";
    f << "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s\n";
    f << "PATTERN SEQ(DELL, IPIX, QQQ) AGG COUNT WITHIN 1s\n";
  }
  for (const char* strategy : {"nonshare", "sase", "pretree", "cc", "hybrid"}) {
    CliResult r = RunTool({"workload", "--queries", path, "--stock", "1500",
                           "--strategy", strategy});
    EXPECT_EQ(r.code, 0) << strategy << ": " << r.err;
    EXPECT_NE(r.out.find("queries:       2"), std::string::npos) << strategy;
    EXPECT_NE(r.out.find("Q1:"), std::string::npos) << strategy;
  }
}

TEST(CliTest, WorkloadRejectsBadInputs) {
  CliResult no_file = RunTool({"workload", "--stock", "10"});
  EXPECT_EQ(no_file.code, 1);
  CliResult missing = RunTool(
      {"workload", "--queries", "/nonexistent/q.txt", "--stock", "10"});
  EXPECT_EQ(missing.code, 1);
  std::string path = ::testing::TempDir() + "/aseq_cli_badqueries.txt";
  {
    std::ofstream f(path);
    f << "NOT A QUERY\n";
  }
  CliResult bad = RunTool({"workload", "--queries", path, "--stock", "10"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find(":1:"), std::string::npos);  // line number reported
}

TEST(CliTest, CompareJoinQueryFallsBackToBaseline) {
  CliResult r = RunTool({"compare", "--query",
                     "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price "
                     "AGG COUNT WITHIN 500",
                     "--stock", "1000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("Unsupported"), std::string::npos);
  EXPECT_NE(r.out.find("StackBased"), std::string::npos);
}

}  // namespace
}  // namespace aseq
