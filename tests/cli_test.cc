#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "cli/flags.h"
#include "fault/fault.h"

namespace aseq {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

// --------------------------------------------------------------------------
// FlagSet
// --------------------------------------------------------------------------

TEST(FlagSetTest, ParsesPositionalAndFlags) {
  auto fs = FlagSet::Parse({"run", "--query", "PATTERN SEQ(A)", "--quiet",
                            "--seed=7"});
  ASSERT_TRUE(fs.ok());
  ASSERT_EQ(fs->positional().size(), 1u);
  EXPECT_EQ(fs->positional()[0], "run");
  EXPECT_EQ(fs->GetString("query"), "PATTERN SEQ(A)");
  EXPECT_TRUE(fs->GetBool("quiet"));
  EXPECT_EQ(*fs->GetInt("seed", 0), 7);
  EXPECT_EQ(*fs->GetInt("missing", 42), 42);
}

TEST(FlagSetTest, BadIntegerIsError) {
  auto fs = FlagSet::Parse({"run", "--seed", "abc"});
  ASSERT_TRUE(fs.ok());
  EXPECT_FALSE(fs->GetInt("seed", 0).ok());
}

TEST(FlagSetTest, PositionalAfterFlagsRejected) {
  EXPECT_FALSE(FlagSet::Parse({"run", "--seed", "7", "oops"}).ok());
  // A lone token after a bare flag is consumed as that flag's value.
  auto fs = FlagSet::Parse({"run", "--quiet", "oops"});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->GetString("quiet"), "oops");
}

TEST(FlagSetTest, CheckKnownFlagsTyposCaught) {
  auto fs = FlagSet::Parse({"run", "--sede", "7"});
  ASSERT_TRUE(fs.ok());
  Status st = fs->CheckKnown({"seed"});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sede"), std::string::npos);
}

// --------------------------------------------------------------------------
// Commands
// --------------------------------------------------------------------------

TEST(CliTest, NoCommandPrintsUsage) {
  CliResult r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, VersionCommand) {
  CliResult r = RunTool({"version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("aseq 1.0.0"), std::string::npos);
  EXPECT_NE(r.out.find("SIGMOD 2014"), std::string::npos);
}

TEST(CliTest, UnknownCommand) {
  CliResult r = RunTool({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, RunOnStockStream) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "2000", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("A-Seq(SEM)"), std::string::npos);
  EXPECT_NE(r.out.find("events:        2000"), std::string::npos);
}

TEST(CliTest, RunWithStackEngine) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "1000", "--engine", "stack", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("StackBased"), std::string::npos);
}

TEST(CliTest, RunWithSlackWrapsEngine) {
  CliResult r = RunTool({"run", "--query",
                     "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s", "--stock",
                     "1000", "--slack", "50", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("+KSlack"), std::string::npos);
}

TEST(CliTest, RunRequiresExactlyOneSource) {
  CliResult r = RunTool({"run", "--query", "PATTERN SEQ(A, B)"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("exactly one source"), std::string::npos);
  CliResult r2 = RunTool({"run", "--query", "PATTERN SEQ(A, B)", "--stock",
                      "10", "--clicks", "10"});
  EXPECT_EQ(r2.code, 1);
}

TEST(CliTest, RunRejectsBadQuery) {
  CliResult r = RunTool({"run", "--query", "SEQ(A, B)", "--stock", "10"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("ParseError"), std::string::npos);
}

TEST(CliTest, RunRejectsUnknownFlag) {
  CliResult r = RunTool({"run", "--query", "PATTERN SEQ(A, B)", "--stonk", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--stonk"), std::string::npos);
}

TEST(CliTest, ExplainDescribesQuery) {
  CliResult r = RunTool(
      {"explain", "--query",
       "PATTERN SEQ(A, !X, B) WHERE A.id = X.id = B.id AGG COUNT WITHIN 5s"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("negation: !X resets the length-1 prefix"),
            std::string::npos);
  EXPECT_NE(r.out.find("equivalence on attribute 'id'"), std::string::npos);
  EXPECT_NE(r.out.find("A-Seq(HPC)"), std::string::npos);
}

TEST(CliTest, ExplainFlagsJoinQueries) {
  CliResult r = RunTool({"explain", "--query",
                     "PATTERN SEQ(A, B) WHERE A.x < B.x WITHIN 1s"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("StackBased (join predicates)"), std::string::npos);
}

TEST(CliTest, GenerateThenRunTrace) {
  std::string path = ::testing::TempDir() + "/aseq_cli_trace.csv";
  CliResult gen = RunTool({"generate", "--clicks", "500", "--out", path});
  EXPECT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote 500 events"), std::string::npos);

  CliResult run = RunTool({"run", "--query",
                       "PATTERN SEQ(ViewKindle, BuyKindle) AGG COUNT "
                       "WITHIN 10s",
                       "--trace", path, "--quiet"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("events:        500"), std::string::npos);
}

TEST(CliTest, GenerateRequiresOut) {
  CliResult r = RunTool({"generate", "--clicks", "10"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(CliTest, CompareAgreesAndReportsSpeedup) {
  CliResult r = RunTool({"compare", "--query",
                     "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 500",
                     "--stock", "2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("result mismatches: 0"), std::string::npos);
  EXPECT_NE(r.out.find("speedup:"), std::string::npos);
}

TEST(CliTest, RunEmitOnChangeWrapsEngine) {
  CliResult r = RunTool({"run", "--query",
                         "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s",
                         "--stock", "1000", "--emit-on-change", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("+OnChange"), std::string::npos);
}

TEST(CliTest, WorkloadRunsAllStrategies) {
  std::string path = ::testing::TempDir() + "/aseq_cli_queries.txt";
  {
    std::ofstream f(path);
    f << "# a small prefix-sharing workload\n";
    f << "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s\n";
    f << "PATTERN SEQ(DELL, IPIX, QQQ) AGG COUNT WITHIN 1s\n";
  }
  for (const char* strategy : {"nonshare", "sase", "pretree", "cc", "hybrid"}) {
    CliResult r = RunTool({"workload", "--queries", path, "--stock", "1500",
                           "--strategy", strategy});
    EXPECT_EQ(r.code, 0) << strategy << ": " << r.err;
    EXPECT_NE(r.out.find("queries:       2"), std::string::npos) << strategy;
    EXPECT_NE(r.out.find("Q1:"), std::string::npos) << strategy;
  }
}

TEST(CliTest, WorkloadRejectsBadInputs) {
  CliResult no_file = RunTool({"workload", "--stock", "10"});
  EXPECT_EQ(no_file.code, 1);
  CliResult missing = RunTool(
      {"workload", "--queries", "/nonexistent/q.txt", "--stock", "10"});
  EXPECT_EQ(missing.code, 1);
  std::string path = ::testing::TempDir() + "/aseq_cli_badqueries.txt";
  {
    std::ofstream f(path);
    f << "NOT A QUERY\n";
  }
  CliResult bad = RunTool({"workload", "--queries", path, "--stock", "10"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find(":1:"), std::string::npos);  // line number reported
}

TEST(CliTest, CompareJoinQueryFallsBackToBaseline) {
  CliResult r = RunTool({"compare", "--query",
                     "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price "
                     "AGG COUNT WITHIN 500",
                     "--stock", "1000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("Unsupported"), std::string::npos);
  EXPECT_NE(r.out.find("StackBased"), std::string::npos);
}

// --------------------------------------------------------------------------
// Stats block ordering (golden) and observability flags
// --------------------------------------------------------------------------

// The `label:` prefixes of the stats block, in output order. Values vary
// with timing, labels must not: docs/internals.md §17 documents this order
// and downstream scrapers key on it.
std::vector<std::string> StatsLabels(const std::string& out) {
  std::vector<std::string> labels;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    const size_t colon = line.find(':');
    // Stats lines are exactly "<label>:<padding><value>" at top level;
    // skip output rows ("t=...") and indented per-query lines.
    if (colon == std::string::npos || line.empty() || line[0] == ' ' ||
        line.compare(0, 2, "t=") == 0) {
      continue;
    }
    labels.push_back(line.substr(0, colon));
  }
  return labels;
}

TEST(CliTest, StatsBlockGoldenOrderSerial) {
  CliResult r = RunTool({"run", "--query",
                         "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 1s",
                         "--stock", "2000", "--quiet"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> expected = {
      "engine", "query", "events", "batch size", "results", "ms/slide",
      "peak objects", "admission"};
  EXPECT_EQ(StatsLabels(r.out), expected) << r.out;
}

TEST(CliTest, StatsBlockGoldenOrderShardedSupervised) {
  // Every conditional stats line at once: sharded + supervised +
  // checkpointing + overload policy + armed faults.
  std::string ckpt_dir = ::testing::TempDir() + "/aseq_cli_golden_ck";
  CliResult r = RunTool(
      {"run", "--query",
       "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "--stock", "4000", "--shards", "2", "--batch-size", "64",
       "--supervise", "--checkpoint-every", "1024", "--checkpoint-dir",
       ckpt_dir, "--overload-policy", "shed", "--fault-spec",
       "worker.op@0:200:crash", "--quiet"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> expected = {
      "engine",      "query",     "events",   "batch size", "shards",
      "results",     "ms/slide",  "peak objects", "admission",
      "utilization", "dataplane", "supervisor",   "overload",
      "faults",      "checkpoints"};
  EXPECT_EQ(StatsLabels(r.out), expected) << r.out;
  // The utilization line carries the min/max busy + imbalance readout.
  EXPECT_NE(r.out.find("shard busy "), std::string::npos);
  EXPECT_NE(r.out.find("imbalance "), std::string::npos);
  // The injector is process-global; leaving it armed would add a "faults"
  // line to every later RunTool in this binary.
  fault::Injector::Global().Disarm();
}

TEST(CliTest, StatsBlockGoldenOrderWorkload) {
  std::string path = ::testing::TempDir() + "/aseq_cli_golden_queries.txt";
  {
    std::ofstream f(path);
    f << "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 1s\n";
    f << "PATTERN SEQ(DELL, AMAT) GROUP BY traderId AGG COUNT WITHIN 1s\n";
  }
  CliResult r = RunTool({"workload", "--queries", path, "--stock", "2000",
                         "--shards", "2", "--batch-size", "64"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> expected = {
      "strategy", "queries", "events", "batch size", "shards", "ms/slide",
      "peak objects", "admission", "utilization", "dataplane"};
  EXPECT_EQ(StatsLabels(r.out), expected) << r.out;
}

TEST(CliTest, MetricsAndTraceFlagsProduceFiles) {
  std::string metrics = ::testing::TempDir() + "/aseq_cli_metrics.jsonl";
  std::string trace = ::testing::TempDir() + "/aseq_cli_trace.json";
  std::string stats = ::testing::TempDir() + "/aseq_cli_stats.json";
  CliResult r = RunTool(
      {"run", "--query",
       "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "--stock", "3000", "--shards", "2", "--batch-size", "64", "--quiet",
       "--metrics-out", metrics, "--metrics-every-ms", "10", "--trace-out",
       trace, "--stats-json", stats});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream mf(metrics);
  std::string first_line;
  ASSERT_TRUE(std::getline(mf, first_line));
  EXPECT_NE(first_line.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(first_line.find("\"shards\":2"), std::string::npos);
  std::stringstream tbuf;
  tbuf << std::ifstream(trace).rdbuf();
  EXPECT_EQ(tbuf.str().front(), '[');
  EXPECT_NE(tbuf.str().find("\"name\":\"batch\""), std::string::npos);
  std::stringstream sbuf;
  sbuf << std::ifstream(stats).rdbuf();
  EXPECT_NE(sbuf.str().find("\"utilization\""), std::string::npos);
  EXPECT_NE(sbuf.str().find("\"events_processed\":3000"), std::string::npos);
}

TEST(CliTest, ObservabilityFlagValidation) {
  // --metrics-every-ms without a destination is a configuration error.
  CliResult orphan = RunTool({"run", "--query", "PATTERN SEQ(DELL, IPIX)",
                              "--stock", "10", "--quiet",
                              "--metrics-every-ms", "50"});
  EXPECT_EQ(orphan.code, 1);
  EXPECT_NE(orphan.err.find("--metrics-out"), std::string::npos);
  CliResult zero = RunTool({"run", "--query", "PATTERN SEQ(DELL, IPIX)",
                            "--stock", "10", "--quiet", "--metrics-out",
                            "/tmp/x.jsonl", "--metrics-every-ms", "0"});
  EXPECT_EQ(zero.code, 1);
  CliResult bad_dir = RunTool({"run", "--query", "PATTERN SEQ(DELL, IPIX)",
                               "--stock", "10", "--quiet", "--trace-out",
                               "/nonexistent-dir/t.json"});
  EXPECT_EQ(bad_dir.code, 1);
  EXPECT_NE(bad_dir.err.find("--trace-out"), std::string::npos);
}

}  // namespace
}  // namespace aseq
