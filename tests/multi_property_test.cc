// Randomized property tests for the multi-query engines: for arbitrary
// workload shapes (random query counts, shared-prefix / shared-substring
// geometry, random chop plans), PreTree, Chop-Connect, and ECube must
// produce exactly the per-query outputs of independent single-query A-Seq.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "aseq/aseq_engine.h"
#include "baseline/ecube_engine.h"
#include "common/rng.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/workload.h"

namespace aseq {
namespace {

using OutputMap = std::map<std::pair<size_t, SeqNum>, int64_t>;

OutputMap Reference(const std::vector<CompiledQuery>& queries,
                    const std::vector<Event>& events) {
  OutputMap ref;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto engine = CreateAseqEngine(queries[qi]);
    EXPECT_TRUE(engine.ok());
    for (const Output& output :
         Runtime::RunEvents(events, engine->get()).outputs) {
      ref[{qi, output.seq}] = output.value.AsInt64();
    }
  }
  return ref;
}

OutputMap ToMap(const std::vector<MultiOutput>& outputs) {
  OutputMap m;
  for (const MultiOutput& mo : outputs) {
    m[{mo.query_index, mo.output.seq}] = mo.output.value.AsInt64();
  }
  return m;
}

void ExpectEqualMaps(const OutputMap& ref, const OutputMap& got,
                     const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (const auto& [key, value] : ref) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << context << " missing q" << key.first << "@" << key.second;
    ASSERT_EQ(value, it->second)
        << context << " q" << key.first << "@" << key.second;
  }
}

/// Chops a query's positive types into random contiguous segments.
std::vector<std::vector<EventTypeId>> RandomChop(
    const std::vector<EventTypeId>& types, Rng* rng) {
  std::vector<std::vector<EventTypeId>> segments;
  size_t i = 0;
  while (i < types.size()) {
    size_t len = 1 + rng->NextUInt(types.size() - i);
    segments.emplace_back(types.begin() + i, types.begin() + i + len);
    i += len;
  }
  return segments;
}

class MultiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiPropertyTest, PreTreeOnRandomPrefixWorkload) {
  Rng rng(GetParam());
  size_t num_queries = 2 + rng.NextUInt(4);
  size_t total = 3 + rng.NextUInt(3);
  size_t prefix = 1 + rng.NextUInt(total - 1);
  SharedWorkload workload = MakePrefixSharedWorkload(
      num_queries, prefix, total, 500 + rng.NextInt(0, 1500));
  Schema schema;
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const Query& q : workload.queries) {
    queries.push_back(std::move(analyzer.Analyze(q)).value());
  }
  StreamConfig config =
      MakeWorkloadStreamConfig(workload, GetParam() * 31 + 7, 400, 0, 40);
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);

  auto engine = PreTreeEngine::Create(queries);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ExpectEqualMaps(Reference(queries, events),
                  ToMap(Runtime::RunMultiEvents(events, engine->get()).outputs),
                  "pretree seed=" + std::to_string(GetParam()));
}

TEST_P(MultiPropertyTest, ChopConnectOnRandomPlans) {
  Rng rng(GetParam() * 977 + 3);
  size_t num_queries = 2 + rng.NextUInt(3);
  size_t prefix = rng.NextUInt(3);
  size_t shared = 1 + rng.NextUInt(3);
  size_t tail = rng.NextUInt(3);
  if (prefix + tail == 0) tail = 1;
  SharedWorkload workload = MakeSubstringSharedWorkload(
      num_queries, prefix, shared, tail, 800 + rng.NextInt(0, 1200));
  Schema schema;
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const Query& q : workload.queries) {
    queries.push_back(std::move(analyzer.Analyze(q)).value());
  }
  StreamConfig config =
      MakeWorkloadStreamConfig(workload, GetParam() * 13 + 1, 350, 0, 40);
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);
  OutputMap ref = Reference(queries, events);

  // The greedy planner's plan...
  {
    auto engine = ChopConnectEngine::Create(queries, PlanChopConnect(queries));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ExpectEqualMaps(
        ref, ToMap(Runtime::RunMultiEvents(events, engine->get()).outputs),
        "cc-greedy seed=" + std::to_string(GetParam()));
  }
  // ...and a fully random chop of every query (stress multi-connect).
  {
    ChopPlan plan;
    for (const CompiledQuery& q : queries) {
      std::vector<size_t> segs;
      for (auto& types : RandomChop(q.positive_types(), &rng)) {
        size_t id = plan.segments.size();
        for (size_t s = 0; s < plan.segments.size(); ++s) {
          if (plan.segments[s] == types) {
            id = s;
            break;
          }
        }
        if (id == plan.segments.size()) plan.segments.push_back(types);
        segs.push_back(id);
      }
      plan.query_segments.push_back(std::move(segs));
    }
    auto engine = ChopConnectEngine::Create(queries, plan);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ExpectEqualMaps(
        ref, ToMap(Runtime::RunMultiEvents(events, engine->get()).outputs),
        "cc-random seed=" + std::to_string(GetParam()));
  }
}

TEST_P(MultiPropertyTest, EcubeOnRandomSubstringWorkload) {
  Rng rng(GetParam() * 51 + 29);
  size_t num_queries = 2 + rng.NextUInt(3);
  size_t prefix = rng.NextUInt(3);
  size_t shared = 1 + rng.NextUInt(2);
  size_t tail = rng.NextUInt(2);
  SharedWorkload workload = MakeSubstringSharedWorkload(
      num_queries, prefix, shared, tail, 600 + rng.NextInt(0, 1000));
  Schema schema;
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const Query& q : workload.queries) {
    queries.push_back(std::move(analyzer.Analyze(q)).value());
  }
  StreamConfig config =
      MakeWorkloadStreamConfig(workload, GetParam() * 7 + 77, 300, 0, 40);
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);

  std::vector<EventTypeId> shared_types;
  for (const std::string& name : workload.shared_types) {
    shared_types.push_back(*schema.FindEventType(name));
  }
  auto engine = EcubeEngine::Create(queries, shared_types);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ExpectEqualMaps(Reference(queries, events),
                  ToMap(Runtime::RunMultiEvents(events, engine->get()).outputs),
                  "ecube seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace aseq
