#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "stream/stream_source.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;
using testing_util::StreamBuilder;

TEST(RuntimeTest, AssignSeqNumsAreStrictlyIncreasing) {
  Schema schema;
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 5).Add("B", 5).Add("A", 6).Build();
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq(), i);
  }
}

TEST(RuntimeTest, RunDrivesSourceAndCollects) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events;
  events.emplace_back(schema.RegisterEventType("A"), 1);
  events.emplace_back(schema.RegisterEventType("B"), 2);
  VectorSource source(events);
  RunResult result = Runtime::Run(&source, engine->get());
  EXPECT_EQ(result.events, 2u);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].value.AsInt64(), 1);
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

TEST(RuntimeTest, CollectOutputsOffStillProcesses) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 1).Add("B", 2).Build();
  RunResult result =
      Runtime::RunEvents(events, engine->get(), /*collect_outputs=*/false);
  EXPECT_TRUE(result.outputs.empty());
  EXPECT_EQ(result.events, 2u);
  EXPECT_EQ((*engine)->stats().outputs, 1u);  // the engine still produced it
}

TEST(RuntimeTest, MillisPerSlideMath) {
  RunResult result;
  result.events = 2000;
  result.elapsed_seconds = 1.0;
  EXPECT_DOUBLE_EQ(result.MillisPerSlide(), 0.5);
  RunResult empty;
  EXPECT_DOUBLE_EQ(empty.MillisPerSlide(), 0.0);
}

TEST(RuntimeTest, OutputToString) {
  Output output;
  output.ts = 42;
  output.value = Value(int64_t{7});
  EXPECT_EQ(output.ToString(), "@42 7");
  output.group = Value("x");
  EXPECT_EQ(output.ToString(), "@42 [x] 7");
}

TEST(RuntimeTest, RunEventsOverridesPreassignedSeqs) {
  // RunEvents re-sequences, so callers can replay the same vector twice.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 1).Add("B", 2).Build();
  for (int round = 0; round < 2; ++round) {
    auto engine = CreateAseqEngine(cq);
    RunResult result = Runtime::RunEvents(events, engine->get());
    ASSERT_EQ(result.outputs.size(), 1u);
    EXPECT_EQ(result.outputs[0].value.AsInt64(), 1);
  }
}

}  // namespace
}  // namespace aseq
