#include <gtest/gtest.h>

#include "baseline/naive_enumerator.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

std::vector<Output> Feed(QueryEngine* engine, const std::vector<Event>& events) {
  return Runtime::RunEvents(events, engine).outputs;
}

// Sec. 2.2 / Example 1: matches form at TRIG arrivals and the count drops
// to zero once the window purges the shared start.
TEST(StackEngineTest, PaperExample1) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C) WITHIN 5s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)  // a1, expires at 6000
                                  .Add("B", 2000)  // b2
                                  .Add("C", 3000)  // c3 -> count 1
                                  .Add("C", 4000)  // c4 -> count 2
                                  .Build();
  std::vector<Output> outputs = Feed(&engine, events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 2);
  EXPECT_EQ(engine.num_live_matches(), 2u);

  // "When b6 arrives, a1 is purged out of the window. No valid sequence
  // survives. Thus the count is updated to zero."
  Event b6(*schema.FindEventType("B"), 6000);
  b6.set_seq(events.size());
  std::vector<Output> none;
  engine.OnEvent(b6, &none);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(engine.num_live_matches(), 0u);
  std::vector<Output> poll = engine.Poll(6000);
  ASSERT_EQ(poll.size(), 1u);
  EXPECT_EQ(CountOf(poll[0]), 0);
}

TEST(StackEngineTest, NegationPostFilter) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B, !C, D) WITHIN 10s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("A", 1500)
                                  .Add("B", 2000)
                                  .Add("C", 3000)
                                  .Add("B", 4000)
                                  .Add("D", 5000)
                                  .Build();
  std::vector<Output> outputs = Feed(&engine, events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 2);  // same scenario as the A-Seq test
}

TEST(StackEngineTest, JoinPredicates) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) WHERE A.w < B.w WITHIN 10s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"w", Value(5)}})
                                  .Add("A", 1500, {{"w", Value(9)}})
                                  .Add("B", 2000, {{"w", Value(7)}})
                                  .Build();
  std::vector<Output> outputs = Feed(&engine, events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);  // only the (w=5, w=7) pair
}

TEST(StackEngineTest, ObjectAccountingGrowsAndShrinks) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0)
                                  .Add("B", 100)
                                  .Add("A", 5000)  // everything old purged
                                  .Build();
  Feed(&engine, events);
  EXPECT_GT(engine.stats().objects.peak(), engine.stats().objects.current());
  EXPECT_EQ(engine.num_live_matches(), 0u);
}

TEST(StackEngineTest, GroupedOutputs) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000, {{"ip", Value("x")}})
                                  .Add("A", 1100, {{"ip", Value("y")}})
                                  .Add("B", 2000, {{"ip", Value("x")}})
                                  .Build();
  std::vector<Output> outputs = Feed(&engine, events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].group->Equals(Value("x")));
  EXPECT_EQ(CountOf(outputs[0]), 1);
}

TEST(StackEngineTest, MinMaxWithExpiry) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) AGG MAX(A.w) WITHIN 1s");
  StackEngine engine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0, {{"w", Value(100.0)}})
                                  .Add("A", 500, {{"w", Value(7.0)}})
                                  .Add("B", 800)    // max = 100
                                  .Add("B", 1200)   // a1 expired: max = 7
                                  .Build();
  std::vector<Output> outputs = Feed(&engine, events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(outputs[1].value.AsDouble(), 7.0);
}

// --------------------------------------------------------------------------
// NaiveEnumerator sanity
// --------------------------------------------------------------------------

TEST(NaiveEnumeratorTest, CountsSimplePattern) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  NaiveEnumerator oracle(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1000)
                                  .Add("A", 2000)
                                  .Add("B", 3000)
                                  .Build();
  EXPECT_EQ(oracle.CountMatches(events, 2, 3000), 2u);
  EXPECT_EQ(oracle.CountMatches(events, 1, 2000), 0u);
}

TEST(NaiveEnumeratorTest, WindowExcludesExpiredStarts) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  NaiveEnumerator oracle(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0)
                                  .Add("B", 500)
                                  .Build();
  EXPECT_EQ(oracle.CountMatches(events, 1, 500), 1u);
  EXPECT_EQ(oracle.CountMatches(events, 1, 1000), 0u);  // start expired
}

TEST(NaiveEnumeratorTest, NegationStrictlyBetween) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, !X, B) WITHIN 10s");
  NaiveEnumerator oracle(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("X", 500)   // before a: harmless
                                  .Add("A", 1000)
                                  .Add("X", 1500)  // between: kills
                                  .Add("B", 2000)
                                  .Build();
  EXPECT_EQ(oracle.CountMatches(events, 3, 2000), 0u);
  // Without the middle X the match exists.
  std::vector<Event> events2 = StreamBuilder(&schema)
                                   .Add("X", 500)
                                   .Add("A", 1000)
                                   .Add("B", 2000)
                                   .Build();
  EXPECT_EQ(oracle.CountMatches(events2, 2, 2000), 1u);
}

}  // namespace
}  // namespace aseq
