// Sharded-vs-serial equivalence: the partition-parallel executor
// (exec::ShardedExecutor) must produce outputs *byte-identical* to the
// serial per-event reference — same (ts, seq, group, value) in the same
// global order — and identical merged EngineStats (modulo the batch
// counters, exactly as the OnBatch contract), for every shardable query
// shape, every shard count, and every ingestion batch size.
//
// Also covered: the fallback matrix. Queries (or engines) that cannot
// shard safely must run serially with a stated reason — never produce a
// sharded-but-wrong answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "exec/execution_policy.h"
#include "exec/multi_execution_policy.h"
#include "exec/shard_router.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

const size_t kShardCounts[] = {2, 3, 8};
const size_t kBatchSizes[] = {1, 64, 256};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

void ExpectOutputEqual(const Output& ref, const Output& got, size_t index,
                       const std::string& context) {
  EXPECT_EQ(ref.ts, got.ts) << context << " output#" << index;
  EXPECT_EQ(ref.seq, got.seq) << context << " output#" << index;
  ASSERT_EQ(ref.group.has_value(), got.group.has_value())
      << context << " output#" << index;
  if (ref.group.has_value()) {
    EXPECT_TRUE(ref.group->Equals(*got.group))
        << context << " output#" << index << ": group "
        << ref.group->ToString() << " vs " << got.group->ToString();
  }
  EXPECT_TRUE(ref.value.Equals(got.value))
      << context << " output#" << index << ": " << ref.value.ToString()
      << " vs " << got.value.ToString();
}

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    ExpectOutputEqual(ref[i], got[i], i, context);
  }
}

/// The merged stats must match the serial engine exactly — including the
/// object-accounting peak, which the executor reconstructs from per-event
/// timelines — except the batch counters (sharded workers drive engines
/// per-event, so theirs stay zero by construction).
void ExpectStatsEqual(const EngineStats& ref, const EngineStats& got,
                      const std::string& context) {
  EXPECT_EQ(ref.events_processed, got.events_processed) << context;
  EXPECT_EQ(ref.outputs, got.outputs) << context;
  EXPECT_EQ(ref.work_units, got.work_units) << context;
  EXPECT_EQ(ref.dropped_events, got.dropped_events) << context;
  EXPECT_EQ(ref.objects.peak(), got.objects.peak()) << context;
  EXPECT_EQ(ref.objects.current(), got.objects.current()) << context;
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n,
                                     size_t traders = 6) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = traders;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

exec::EngineFactory AseqFactory(const CompiledQuery& cq) {
  return [&cq] { return CreateAseqEngine(cq); };
}

/// Serial per-event reference, then one sharded policy per (shards, batch)
/// combination; every run must match the reference byte-for-byte.
void CheckSharded(const CompiledQuery& cq, const std::vector<Event>& events,
                  const std::string& label) {
  auto ref_result = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_result.ok()) << label << ": " << ref_result.status().ToString();
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_result).value();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  for (size_t shards : kShardCounts) {
    for (size_t batch_size : kBatchSizes) {
      const std::string context = label + " @shards=" +
                                  std::to_string(shards) +
                                  " batch=" + std::to_string(batch_size);
      RunOptions options;
      options.num_shards = shards;
      options.batch_size = batch_size;
      std::string reason;
      auto policy = exec::MakePolicy(cq, AseqFactory(cq), options, &reason);
      ASSERT_TRUE(policy.ok()) << context << ": "
                               << policy.status().ToString();
      ASSERT_TRUE(reason.empty()) << context << ": unexpected fallback — "
                                  << reason;
      ASSERT_EQ((*policy)->num_shards(), shards) << context;
      RunResult got = (*policy)->RunEvents(events);
      EXPECT_EQ(got.num_shards, shards) << context;
      ExpectOutputsEqual(ref.outputs, got.outputs, context);
      ExpectStatsEqual(ref_engine->stats(), (*policy)->stats(), context);

      // The per-shard breakdown must sum back to the merged bulk view.
      uint64_t shard_events = 0;
      for (const EngineStats& s : (*policy)->shard_stats()) {
        shard_events += s.events_processed;
      }
      EXPECT_EQ(shard_events, (*policy)->stats().events_processed) << context;
    }
  }
}

// ---------------------------------------------------------------------------
// Shardable query shapes
// ---------------------------------------------------------------------------

TEST(ShardEquivalenceTest, GroupedCountWindowed) {
  auto c = MakeStock(121, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-count-windowed");
}

TEST(ShardEquivalenceTest, GroupedCountUnbounded) {
  auto c = MakeStock(122, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT");
  CheckSharded(cq, c->events, "grouped-count-unbounded");
}

TEST(ShardEquivalenceTest, GroupedCountLongerPattern) {
  auto c = MakeStock(123, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 1s");
  CheckSharded(cq, c->events, "grouped-count-3step");
}

TEST(ShardEquivalenceTest, GroupedNegation) {
  auto c = MakeStock(124, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, !QQQ, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-negation");
}

TEST(ShardEquivalenceTest, GroupedSumSinglePart) {
  // SUM shards when the GROUP BY key is the only partition part: each
  // group's running sum lives on exactly one shard, so float accumulation
  // order is untouched.
  auto c = MakeStock(125, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.volume) "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-sum");
}

TEST(ShardEquivalenceTest, GroupedAvgSinglePart) {
  auto c = MakeStock(126, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG AVG(IPIX.price) "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-avg");
}

TEST(ShardEquivalenceTest, GroupedMaxMultiPart) {
  // GROUP BY + an equivalence class makes a multi-part key; MAX is
  // order-insensitive, so the cross-partition merge still shards.
  auto c = MakeStock(127, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.volume = IPIX.volume "
      "GROUP BY traderId AGG MAX(IPIX.price) WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-max-multipart");
}

TEST(ShardEquivalenceTest, ManyGroupsFewShards) {
  auto c = MakeStock(128, 6000, /*traders=*/40);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 600ms");
  CheckSharded(cq, c->events, "many-groups");
}

TEST(ShardEquivalenceTest, MoreShardsThanGroups) {
  // Shard counts above the group cardinality leave some shards idle; the
  // merge must still be exact.
  auto c = MakeStock(129, 2500, /*traders=*/2);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckSharded(cq, c->events, "more-shards-than-groups");
}

// ---------------------------------------------------------------------------
// Fallback matrix — requesting shards must never change the answer; it
// either shards exactly or runs serially with a reason.
// ---------------------------------------------------------------------------

/// Requests `shards` shards and expects a serial fallback whose reason
/// contains `reason_substr`; the run must still match the reference.
void CheckFallback(const CompiledQuery& cq, const exec::EngineFactory& factory,
                   const std::vector<Event>& events,
                   const std::string& reason_substr,
                   const std::string& label) {
  auto ref_result = factory();
  ASSERT_TRUE(ref_result.ok()) << label;
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_result).value();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());

  RunOptions options;
  options.num_shards = 4;
  std::string reason;
  auto policy = exec::MakePolicy(cq, factory, options, &reason);
  ASSERT_TRUE(policy.ok()) << label << ": " << policy.status().ToString();
  EXPECT_EQ((*policy)->num_shards(), 1u) << label;
  EXPECT_NE(reason.find(reason_substr), std::string::npos)
      << label << ": reason was '" << reason << "', expected it to mention '"
      << reason_substr << "'";
  RunResult got = (*policy)->RunEvents(events);
  EXPECT_EQ(got.num_shards, 1u) << label;
  ExpectOutputsEqual(ref.outputs, got.outputs, label);
}

TEST(ShardFallbackTest, UngroupedQuery) {
  auto c = MakeStock(131, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "no GROUP BY", "ungrouped");
}

TEST(ShardFallbackTest, EquivalenceOnlyPartitioning) {
  // Partitioned, but per-partition results are summed into one global
  // answer — merging them would need every partition on one shard.
  auto c = MakeStock(132, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.traderId = IPIX.traderId "
      "AGG COUNT WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "equivalence only",
                "equivalence-only");
}

TEST(ShardFallbackTest, SumAcrossMultiPartKey) {
  // SUM over a multi-part key merges a group's partitions in hash-map
  // iteration order; splitting them across shards would reorder float
  // accumulation. Must fall back.
  auto c = MakeStock(133, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.volume = IPIX.volume "
      "GROUP BY traderId AGG SUM(IPIX.price) WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "order", "sum-multipart");
}

TEST(ShardFallbackTest, JoinPredicates) {
  auto c = MakeStock(134, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price "
      "GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckFallback(
      cq, [&cq] { return Result<std::unique_ptr<QueryEngine>>(
                      std::make_unique<StackEngine>(cq)); },
      c->events, "join predicate", "join-predicates");
}

TEST(ShardFallbackTest, UnshardableEngine) {
  // The query shards, but the stack baseline has no partitioned state.
  auto c = MakeStock(135, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckFallback(
      cq, [&cq] { return Result<std::unique_ptr<QueryEngine>>(
                      std::make_unique<StackEngine>(cq)); },
      c->events, "does not support sharding", "stack-engine");
}

TEST(ShardFallbackTest, PlanShardingReportsShardable) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema,
      "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s");
  exec::ShardPlan plan = exec::PlanSharding(cq);
  EXPECT_TRUE(plan.shardable) << plan.reason;
  EXPECT_TRUE(plan.reason.empty());
}

// ---------------------------------------------------------------------------
// Multi-query workloads: the sharding engines on the same executor
// ---------------------------------------------------------------------------
//
// The multi-query sharded executor (exec::MultiShardedExecutor behind
// exec::MakeMultiPolicy) must match the serial sharing engine bit-exact:
// the same query-tagged outputs in the same global order, and identical
// merged EngineStats including the live-object peak, for every sharing
// strategy, shard count, and ingestion batch size.

void ExpectMultiOutputsEqual(const std::vector<MultiOutput>& ref,
                             const std::vector<MultiOutput>& got,
                             const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].query_index, got[i].query_index)
        << context << " output#" << i;
    ExpectOutputEqual(ref[i].output, got[i].output, i, context);
  }
}

std::vector<CompiledQuery> MustCompileAll(
    Schema* schema, const std::vector<std::string>& texts) {
  std::vector<CompiledQuery> queries;
  queries.reserve(texts.size());
  for (const std::string& text : texts) {
    queries.push_back(MustCompile(schema, text));
  }
  return queries;
}

/// One factory per sharing strategy, closing over the workload by
/// reference (the workload outlives every policy built from it).
exec::MultiEngineFactory MultiFactory(
    const std::string& strategy, const std::vector<CompiledQuery>& queries) {
  if (strategy == "cc") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(
          auto e, ChopConnectEngine::Create(queries, PlanChopConnect(queries)));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "pretree") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, PreTreeEngine::Create(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  if (strategy == "hybrid") {
    return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
      ASEQ_ASSIGN_OR_RETURN(auto e, HybridMultiEngine::Create(queries));
      return std::unique_ptr<MultiQueryEngine>(std::move(e));
    };
  }
  EXPECT_EQ(strategy, "nonshare") << "unknown strategy";
  return [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
    ASEQ_ASSIGN_OR_RETURN(auto e, NonSharedEngine::CreateAseq(queries));
    return std::unique_ptr<MultiQueryEngine>(std::move(e));
  };
}

/// Sharded-vs-serial check for one workload and one sharing strategy:
/// a per-event serial run pins the canonical output sequence; for every
/// batch size a serial *policy* run (same OnBatch slicing as the shards
/// use) pins the stats reference; every shard count must reproduce both.
void CheckMultiSharded(const std::vector<CompiledQuery>& queries,
                       const std::vector<Event>& events,
                       const std::string& strategy, const std::string& label) {
  exec::MultiEngineFactory factory = MultiFactory(strategy, queries);

  auto ref_engine_or = factory();
  ASSERT_TRUE(ref_engine_or.ok())
      << label << ": " << ref_engine_or.status().ToString();
  std::unique_ptr<MultiQueryEngine> ref_engine =
      std::move(ref_engine_or).value();
  MultiRunResult ref = Runtime::RunMultiEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  for (size_t batch : kBatchSizes) {
    RunOptions serial_options;
    serial_options.num_shards = 1;
    serial_options.batch_size = batch;
    auto serial = exec::MakeMultiPolicy(queries, factory, serial_options);
    ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
    MultiRunResult serial_run = (*serial)->RunEvents(events);
    ExpectMultiOutputsEqual(ref.outputs, serial_run.outputs,
                            label + " serial batch=" + std::to_string(batch));

    for (size_t shards : kShardCounts) {
      const std::string context = label + " shards=" + std::to_string(shards) +
                                  " batch=" + std::to_string(batch);
      RunOptions options;
      options.num_shards = shards;
      options.batch_size = batch;
      std::string reason;
      auto policy = exec::MakeMultiPolicy(queries, factory, options, &reason);
      ASSERT_TRUE(policy.ok()) << context << ": " << policy.status().ToString();
      ASSERT_TRUE(reason.empty()) << context << ": fell back: " << reason;
      ASSERT_EQ((*policy)->num_shards(), shards) << context;

      MultiRunResult got = (*policy)->RunEvents(events);
      ExpectMultiOutputsEqual(ref.outputs, got.outputs, context);
      ExpectStatsEqual((*serial)->stats(), (*policy)->stats(), context);

      uint64_t shard_events = 0;
      for (const EngineStats& s : (*policy)->shard_stats()) {
        shard_events += s.events_processed;
      }
      EXPECT_EQ(shard_events, (*serial)->stats().events_processed) << context;
    }
  }
}

const char* const kSharingStrategies[] = {"cc", "pretree", "hybrid",
                                          "nonshare"};

/// Draws a random workload every sharing engine accepts: 2–4 distinct
/// positive COUNT patterns over one shared window, all GROUP BY traderId
/// (Chop-Connect and PreTree reject anything wider, per the paper's
/// multi-query scope).
std::vector<std::string> RandomSharedWorkload(std::mt19937* rng) {
  // Chop-Connect requires distinct event types per pattern, so the pool
  // stays repeat-free — every strategy then accepts every draw.
  static const char* const kPatterns[] = {
      "SEQ(DELL, IPIX)",       "SEQ(DELL, QQQ, IPIX)",
      "SEQ(IPIX, DELL)",       "SEQ(DELL, IPIX, AMAT)",
      "SEQ(AMAT, DELL)",       "SEQ(IPIX, AMAT)",
      "SEQ(AMAT, IPIX, DELL)", "SEQ(DELL, AMAT)",
  };
  static const int kWindows[] = {600, 800, 1000};
  std::vector<size_t> picks(std::size(kPatterns));
  for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
  std::shuffle(picks.begin(), picks.end(), *rng);
  const size_t n = 2 + (*rng)() % 3;
  const int window = kWindows[(*rng)() % std::size(kWindows)];
  std::vector<std::string> texts;
  for (size_t i = 0; i < n; ++i) {
    texts.push_back("PATTERN " + std::string(kPatterns[picks[i]]) +
                    " GROUP BY traderId AGG COUNT WITHIN " +
                    std::to_string(window) + "ms");
  }
  return texts;
}

/// The randomized matrix: the same drawn workloads run through every
/// sharing strategy, so a drift in any one engine's sharded path shows up
/// against the same canonical streams.
void CheckMultiRandomized(const std::string& strategy) {
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::string> texts = RandomSharedWorkload(&rng);
    auto c = MakeStock(500 + static_cast<uint64_t>(trial), 2000);
    std::vector<CompiledQuery> queries = MustCompileAll(&c->schema, texts);
    CheckMultiSharded(queries, c->events, strategy,
                      strategy + "-trial" + std::to_string(trial));
  }
}

TEST(MultiShardEquivalenceTest, RandomizedChopConnect) {
  CheckMultiRandomized("cc");
}

TEST(MultiShardEquivalenceTest, RandomizedPreTree) {
  CheckMultiRandomized("pretree");
}

TEST(MultiShardEquivalenceTest, RandomizedHybrid) {
  CheckMultiRandomized("hybrid");
}

TEST(MultiShardEquivalenceTest, RandomizedNonShare) {
  CheckMultiRandomized("nonshare");
}

TEST(MultiShardEquivalenceTest, PrefixHeavyWorkload) {
  // Maximal prefix overlap: every query is a prefix of the longest one,
  // the shape PreTree's trie and Chop-Connect's segment sharing both
  // collapse hardest.
  auto c = MakeStock(510, 2500);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT "
       "WITHIN 800ms",
       "PATTERN SEQ(DELL, IPIX, AMAT, QQQ) GROUP BY traderId AGG COUNT "
       "WITHIN 800ms"});
  for (const char* strategy : kSharingStrategies) {
    CheckMultiSharded(queries, c->events, strategy,
                      std::string("prefix-heavy-") + strategy);
  }
}

TEST(MultiShardEquivalenceTest, NegationWorkloadHybridAndNonShare) {
  // Negation is outside Chop-Connect/PreTree scope; the hybrid routes
  // such queries to per-query engines and must still shard the whole mix.
  auto c = MakeStock(511, 2500);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "PATTERN SEQ(DELL, !QQQ, AMAT) GROUP BY traderId AGG COUNT "
       "WITHIN 800ms",
       "PATTERN SEQ(IPIX, DELL) GROUP BY traderId AGG COUNT WITHIN 600ms"});
  CheckMultiSharded(queries, c->events, "hybrid", "negation-hybrid");
  CheckMultiSharded(queries, c->events, "nonshare", "negation-nonshare");
}

TEST(MultiShardEquivalenceTest, SingleQueryWorkload) {
  // The one-query degenerate case must behave exactly like the
  // single-query sharded path.
  auto c = MakeStock(512, 2000);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms"});
  for (const char* strategy : kSharingStrategies) {
    CheckMultiSharded(queries, c->events, strategy,
                      std::string("single-") + strategy);
  }
}

// ---------------------------------------------------------------------------
// Multi-query fallback matrix
// ---------------------------------------------------------------------------

/// Expects MakeMultiPolicy to refuse sharding (falling back to a serial
/// policy) with `reason_substr` in the stated reason — and the serial
/// answer to still match the per-event reference.
void CheckMultiFallback(const std::vector<CompiledQuery>& queries,
                        const exec::MultiEngineFactory& factory,
                        const std::vector<Event>& events,
                        const std::string& reason_substr,
                        const std::string& label) {
  RunOptions options;
  options.num_shards = 4;
  std::string reason;
  auto policy = exec::MakeMultiPolicy(queries, factory, options, &reason);
  ASSERT_TRUE(policy.ok()) << label << ": " << policy.status().ToString();
  EXPECT_EQ((*policy)->num_shards(), 1u) << label;
  EXPECT_NE(reason.find(reason_substr), std::string::npos)
      << label << ": reason was '" << reason << "'";

  auto ref_engine_or = factory();
  ASSERT_TRUE(ref_engine_or.ok()) << label;
  std::unique_ptr<MultiQueryEngine> ref_engine =
      std::move(ref_engine_or).value();
  MultiRunResult ref = Runtime::RunMultiEvents(events, ref_engine.get());
  MultiRunResult got = (*policy)->RunEvents(events);
  ExpectMultiOutputsEqual(ref.outputs, got.outputs, label);
}

TEST(MultiShardFallbackTest, UngroupedQueryInWorkload) {
  auto c = MakeStock(520, 1500);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "PATTERN SEQ(IPIX, DELL) AGG COUNT WITHIN 800ms"});
  CheckMultiFallback(queries, MultiFactory("nonshare", queries), c->events,
                     "query 1", "ungrouped-query");
}

TEST(MultiShardFallbackTest, DifferentGroupAttributes) {
  // Each query shards alone, but one event cannot land on both queries'
  // owner shards at once — the workload must run serially.
  auto c = MakeStock(521, 1500);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "PATTERN SEQ(IPIX, DELL) GROUP BY volume AGG COUNT WITHIN 800ms"});
  CheckMultiFallback(queries, MultiFactory("nonshare", queries), c->events,
                     "different attributes", "group-attr-mismatch");
}

TEST(MultiShardFallbackTest, UnshardableEngine) {
  // The workload shards, but the stack-based sub-engines have no
  // partitioned state to split.
  auto c = MakeStock(522, 1500);
  std::vector<CompiledQuery> queries = MustCompileAll(
      &c->schema,
      {"PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms",
       "PATTERN SEQ(IPIX, DELL) GROUP BY traderId AGG COUNT WITHIN 800ms"});
  exec::MultiEngineFactory factory =
      [&queries]() -> Result<std::unique_ptr<MultiQueryEngine>> {
    return std::unique_ptr<MultiQueryEngine>(
        NonSharedEngine::CreateStackBased(queries));
  };
  CheckMultiFallback(queries, factory, c->events, "does not support sharding",
                     "stack-workload");
}

TEST(MultiShardFallbackTest, PlanMultiShardingReportsShardable) {
  Schema schema;
  std::vector<CompiledQuery> queries = MustCompileAll(
      &schema,
      {"PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s",
       "PATTERN SEQ(B, A) GROUP BY ip AGG COUNT WITHIN 10s"});
  exec::MultiShardPlan plan = exec::PlanMultiSharding(queries);
  EXPECT_TRUE(plan.shardable) << plan.reason;
  EXPECT_TRUE(plan.reason.empty());
}

}  // namespace
}  // namespace aseq
