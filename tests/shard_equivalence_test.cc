// Sharded-vs-serial equivalence: the partition-parallel executor
// (exec::ShardedExecutor) must produce outputs *byte-identical* to the
// serial per-event reference — same (ts, seq, group, value) in the same
// global order — and identical merged EngineStats (modulo the batch
// counters, exactly as the OnBatch contract), for every shardable query
// shape, every shard count, and every ingestion batch size.
//
// Also covered: the fallback matrix. Queries (or engines) that cannot
// shard safely must run serially with a stated reason — never produce a
// sharded-but-wrong answer.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "exec/execution_policy.h"
#include "exec/shard_router.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

const size_t kShardCounts[] = {2, 3, 8};
const size_t kBatchSizes[] = {1, 64, 256};

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

void ExpectOutputEqual(const Output& ref, const Output& got, size_t index,
                       const std::string& context) {
  EXPECT_EQ(ref.ts, got.ts) << context << " output#" << index;
  EXPECT_EQ(ref.seq, got.seq) << context << " output#" << index;
  ASSERT_EQ(ref.group.has_value(), got.group.has_value())
      << context << " output#" << index;
  if (ref.group.has_value()) {
    EXPECT_TRUE(ref.group->Equals(*got.group))
        << context << " output#" << index << ": group "
        << ref.group->ToString() << " vs " << got.group->ToString();
  }
  EXPECT_TRUE(ref.value.Equals(got.value))
      << context << " output#" << index << ": " << ref.value.ToString()
      << " vs " << got.value.ToString();
}

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    ExpectOutputEqual(ref[i], got[i], i, context);
  }
}

/// The merged stats must match the serial engine exactly — including the
/// object-accounting peak, which the executor reconstructs from per-event
/// timelines — except the batch counters (sharded workers drive engines
/// per-event, so theirs stay zero by construction).
void ExpectStatsEqual(const EngineStats& ref, const EngineStats& got,
                      const std::string& context) {
  EXPECT_EQ(ref.events_processed, got.events_processed) << context;
  EXPECT_EQ(ref.outputs, got.outputs) << context;
  EXPECT_EQ(ref.work_units, got.work_units) << context;
  EXPECT_EQ(ref.dropped_events, got.dropped_events) << context;
  EXPECT_EQ(ref.objects.peak(), got.objects.peak()) << context;
  EXPECT_EQ(ref.objects.current(), got.objects.current()) << context;
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n,
                                     size_t traders = 6) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = traders;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

exec::EngineFactory AseqFactory(const CompiledQuery& cq) {
  return [&cq] { return CreateAseqEngine(cq); };
}

/// Serial per-event reference, then one sharded policy per (shards, batch)
/// combination; every run must match the reference byte-for-byte.
void CheckSharded(const CompiledQuery& cq, const std::vector<Event>& events,
                  const std::string& label) {
  auto ref_result = CreateAseqEngine(cq);
  ASSERT_TRUE(ref_result.ok()) << label << ": " << ref_result.status().ToString();
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_result).value();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  for (size_t shards : kShardCounts) {
    for (size_t batch_size : kBatchSizes) {
      const std::string context = label + " @shards=" +
                                  std::to_string(shards) +
                                  " batch=" + std::to_string(batch_size);
      RunOptions options;
      options.num_shards = shards;
      options.batch_size = batch_size;
      std::string reason;
      auto policy = exec::MakePolicy(cq, AseqFactory(cq), options, &reason);
      ASSERT_TRUE(policy.ok()) << context << ": "
                               << policy.status().ToString();
      ASSERT_TRUE(reason.empty()) << context << ": unexpected fallback — "
                                  << reason;
      ASSERT_EQ((*policy)->num_shards(), shards) << context;
      RunResult got = (*policy)->RunEvents(events);
      EXPECT_EQ(got.num_shards, shards) << context;
      ExpectOutputsEqual(ref.outputs, got.outputs, context);
      ExpectStatsEqual(ref_engine->stats(), (*policy)->stats(), context);

      // The per-shard breakdown must sum back to the merged bulk view.
      uint64_t shard_events = 0;
      for (const EngineStats& s : (*policy)->shard_stats()) {
        shard_events += s.events_processed;
      }
      EXPECT_EQ(shard_events, (*policy)->stats().events_processed) << context;
    }
  }
}

// ---------------------------------------------------------------------------
// Shardable query shapes
// ---------------------------------------------------------------------------

TEST(ShardEquivalenceTest, GroupedCountWindowed) {
  auto c = MakeStock(121, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-count-windowed");
}

TEST(ShardEquivalenceTest, GroupedCountUnbounded) {
  auto c = MakeStock(122, 2500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT");
  CheckSharded(cq, c->events, "grouped-count-unbounded");
}

TEST(ShardEquivalenceTest, GroupedCountLongerPattern) {
  auto c = MakeStock(123, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 1s");
  CheckSharded(cq, c->events, "grouped-count-3step");
}

TEST(ShardEquivalenceTest, GroupedNegation) {
  auto c = MakeStock(124, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, !QQQ, AMAT) GROUP BY traderId AGG COUNT "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-negation");
}

TEST(ShardEquivalenceTest, GroupedSumSinglePart) {
  // SUM shards when the GROUP BY key is the only partition part: each
  // group's running sum lives on exactly one shard, so float accumulation
  // order is untouched.
  auto c = MakeStock(125, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.volume) "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-sum");
}

TEST(ShardEquivalenceTest, GroupedAvgSinglePart) {
  auto c = MakeStock(126, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG AVG(IPIX.price) "
      "WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-avg");
}

TEST(ShardEquivalenceTest, GroupedMaxMultiPart) {
  // GROUP BY + an equivalence class makes a multi-part key; MAX is
  // order-insensitive, so the cross-partition merge still shards.
  auto c = MakeStock(127, 4000);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.volume = IPIX.volume "
      "GROUP BY traderId AGG MAX(IPIX.price) WITHIN 800ms");
  CheckSharded(cq, c->events, "grouped-max-multipart");
}

TEST(ShardEquivalenceTest, ManyGroupsFewShards) {
  auto c = MakeStock(128, 6000, /*traders=*/40);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 600ms");
  CheckSharded(cq, c->events, "many-groups");
}

TEST(ShardEquivalenceTest, MoreShardsThanGroups) {
  // Shard counts above the group cardinality leave some shards idle; the
  // merge must still be exact.
  auto c = MakeStock(129, 2500, /*traders=*/2);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckSharded(cq, c->events, "more-shards-than-groups");
}

// ---------------------------------------------------------------------------
// Fallback matrix — requesting shards must never change the answer; it
// either shards exactly or runs serially with a reason.
// ---------------------------------------------------------------------------

/// Requests `shards` shards and expects a serial fallback whose reason
/// contains `reason_substr`; the run must still match the reference.
void CheckFallback(const CompiledQuery& cq, const exec::EngineFactory& factory,
                   const std::vector<Event>& events,
                   const std::string& reason_substr,
                   const std::string& label) {
  auto ref_result = factory();
  ASSERT_TRUE(ref_result.ok()) << label;
  std::unique_ptr<QueryEngine> ref_engine = std::move(ref_result).value();
  RunResult ref = Runtime::RunEvents(events, ref_engine.get());

  RunOptions options;
  options.num_shards = 4;
  std::string reason;
  auto policy = exec::MakePolicy(cq, factory, options, &reason);
  ASSERT_TRUE(policy.ok()) << label << ": " << policy.status().ToString();
  EXPECT_EQ((*policy)->num_shards(), 1u) << label;
  EXPECT_NE(reason.find(reason_substr), std::string::npos)
      << label << ": reason was '" << reason << "', expected it to mention '"
      << reason_substr << "'";
  RunResult got = (*policy)->RunEvents(events);
  EXPECT_EQ(got.num_shards, 1u) << label;
  ExpectOutputsEqual(ref.outputs, got.outputs, label);
}

TEST(ShardFallbackTest, UngroupedQuery) {
  auto c = MakeStock(131, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "no GROUP BY", "ungrouped");
}

TEST(ShardFallbackTest, EquivalenceOnlyPartitioning) {
  // Partitioned, but per-partition results are summed into one global
  // answer — merging them would need every partition on one shard.
  auto c = MakeStock(132, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.traderId = IPIX.traderId "
      "AGG COUNT WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "equivalence only",
                "equivalence-only");
}

TEST(ShardFallbackTest, SumAcrossMultiPartKey) {
  // SUM over a multi-part key merges a group's partitions in hash-map
  // iteration order; splitting them across shards would reorder float
  // accumulation. Must fall back.
  auto c = MakeStock(133, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.volume = IPIX.volume "
      "GROUP BY traderId AGG SUM(IPIX.price) WITHIN 800ms");
  CheckFallback(cq, AseqFactory(cq), c->events, "order", "sum-multipart");
}

TEST(ShardFallbackTest, JoinPredicates) {
  auto c = MakeStock(134, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price "
      "GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckFallback(
      cq, [&cq] { return Result<std::unique_ptr<QueryEngine>>(
                      std::make_unique<StackEngine>(cq)); },
      c->events, "join predicate", "join-predicates");
}

TEST(ShardFallbackTest, UnshardableEngine) {
  // The query shards, but the stack baseline has no partitioned state.
  auto c = MakeStock(135, 1500);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckFallback(
      cq, [&cq] { return Result<std::unique_ptr<QueryEngine>>(
                      std::make_unique<StackEngine>(cq)); },
      c->events, "does not support sharding", "stack-engine");
}

TEST(ShardFallbackTest, PlanShardingReportsShardable) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema,
      "PATTERN SEQ(A, B) GROUP BY ip AGG COUNT WITHIN 10s");
  exec::ShardPlan plan = exec::PlanSharding(cq);
  EXPECT_TRUE(plan.shardable) << plan.reason;
  EXPECT_TRUE(plan.reason.empty());
}

}  // namespace
}  // namespace aseq
