// Robustness: the parser/analyzer must return a Status — never crash,
// hang, or accept garbage — for arbitrary byte soup, truncations of valid
// queries, and adversarial near-miss inputs.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace aseq {
namespace {

TEST(ParserRobustnessTest, RandomByteSoupNeverCrashes) {
  Rng rng(42);
  const char alphabet[] =
      "ABCxyz_019 \t\n(),.!<>='\"PATTERNSEQWHEREGROUPBYAGGWITHIN*#";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input;
    size_t len = rng.NextUInt(60);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextUInt(sizeof(alphabet) - 1)];
    }
    auto result = ParseQuery(input);  // must simply return
    if (result.ok()) {
      // Whatever parsed must reparse from its canonical text.
      auto again = ParseQuery(result->ToString());
      EXPECT_TRUE(again.ok()) << "canonical text failed: "
                              << result->ToString();
    }
  }
}

TEST(ParserRobustnessTest, RandomTruncationsOfValidQuery) {
  const std::string query =
      "PATTERN SEQ(Kindle, KindleCase, !Rec, Stylus) "
      "WHERE Kindle.userId = KindleCase.userId = Stylus.userId AND "
      "Kindle.model = 'touch' GROUP BY region AGG SUM(Stylus.price) "
      "WITHIN 90min";
  ASSERT_TRUE(ParseQuery(query).ok()) << ParseQuery(query).status().ToString();
  for (size_t cut = 0; cut < query.size(); ++cut) {
    ParseQuery(query.substr(0, cut));  // must not crash; ok() may vary
  }
}

TEST(ParserRobustnessTest, RandomTokenDeletions) {
  Rng rng(7);
  const std::vector<std::string> tokens = {
      "PATTERN", "SEQ",  "(",  "A",  ",", "!",      "B",  ",",  "C",   ")",
      "WHERE",   "A",    ".",  "x",  "=", "C",      ".",  "x",  "AGG", "COUNT",
      "WITHIN",  "10",   "s"};
  for (int iter = 0; iter < 500; ++iter) {
    std::string input;
    for (const std::string& token : tokens) {
      if (rng.NextBool(0.85)) {
        input += token;
        input += " ";
      }
    }
    Schema schema;
    Analyzer analyzer(&schema);
    analyzer.AnalyzeText(input);  // Status either way; no crash
  }
}

TEST(ParserRobustnessTest, DeeplyNestedAndLongInputs) {
  // A very long pattern parses fine (no recursion on pattern length).
  std::string many = "PATTERN SEQ(T0";
  for (int i = 1; i < 500; ++i) many += ", T" + std::to_string(i);
  many += ")";
  auto result = ParseQuery(many);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pattern.size(), 500u);

  // A long WHERE conjunction too.
  std::string wide = "PATTERN SEQ(A, B) WHERE A.x0 = 1";
  for (int i = 1; i < 300; ++i) {
    wide += " AND A.x" + std::to_string(i) + " = " + std::to_string(i);
  }
  EXPECT_TRUE(ParseQuery(wide).ok());
}

TEST(ParserRobustnessTest, AnalyzerOnHostileButParseableQueries) {
  Schema schema;
  Analyzer analyzer(&schema);
  // All must return non-OK Status (not crash, not accept).
  const char* bad[] = {
      "PATTERN SEQ(!A)",
      "PATTERN SEQ(!A, !B)",
      "PATTERN SEQ(A, B) WHERE Z.x = 1",
      "PATTERN SEQ(A, B) AGG SUM(A.x) WITHIN 1s GROUP BY g",  // clause order
      "PATTERN SEQ(A, A) WHERE A.x = 1",
      "PATTERN SEQ(A, B) WHERE 2 < 1",
  };
  for (const char* q : bad) {
    EXPECT_FALSE(analyzer.AnalyzeText(q).ok()) << q;
  }
}

}  // namespace
}  // namespace aseq
