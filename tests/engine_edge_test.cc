#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "baseline/naive_enumerator.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

std::vector<Output> Feed(QueryEngine* engine, const std::vector<Event>& events) {
  return Runtime::RunEvents(events, engine).outputs;
}

// --------------------------------------------------------------------------
// Poll / OnEvent interleaving and timing semantics
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, PollBeforeAnyEvent) {
  Schema schema;
  for (const char* text :
       {"PATTERN SEQ(A, B) WITHIN 1s", "PATTERN SEQ(A, B)",
        "PATTERN SEQ(A, B) WHERE A.id = B.id WITHIN 1s"}) {
    CompiledQuery cq = MustCompile(&schema, text);
    auto engine = CreateAseqEngine(cq);
    ASSERT_TRUE(engine.ok());
    std::vector<Output> poll = (*engine)->Poll(0);
    // Ungrouped engines report a single zero; grouped report nothing.
    for (const Output& output : poll) {
      EXPECT_EQ(CountOf(output), 0);
    }
  }
}

TEST(EngineEdgeTest, PollIsIdempotent) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 1000).Add("B", 2000).Build();
  Feed(engine->get(), events);
  for (int i = 0; i < 3; ++i) {
    std::vector<Output> poll = (*engine)->Poll(2000);
    ASSERT_EQ(poll.size(), 1u);
    EXPECT_EQ(CountOf(poll[0]), 1);
  }
}

TEST(EngineEdgeTest, PollAdvancingTimeExpiresState) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 0).Add("B", 500).Build();
  Feed(engine->get(), events);
  EXPECT_EQ(CountOf((*engine)->Poll(999)[0]), 1);
  EXPECT_EQ(CountOf((*engine)->Poll(1000)[0]), 0);  // start expired
}

TEST(EngineEdgeTest, SimultaneousTimestampsOrderedByArrival) {
  // Arrival order defines the sequence order when timestamps tie.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> ab =
      StreamBuilder(&schema).Add("A", 1000).Add("B", 1000).Build();
  std::vector<Output> outputs = Feed(engine->get(), ab);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);  // A precedes B by arrival

  auto engine2 = CreateAseqEngine(cq);
  std::vector<Event> ba =
      StreamBuilder(&schema).Add("B", 1000).Add("A", 1000).Build();
  std::vector<Output> outputs2 = Feed(engine2->get(), ba);
  ASSERT_EQ(outputs2.size(), 1u);
  EXPECT_EQ(CountOf(outputs2[0]), 0);  // B arrived before A: no match
}

// --------------------------------------------------------------------------
// Stats accounting
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, StatsCountEventsAndOutputs) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("Z", 2)
                                  .Add("B", 3)
                                  .Add("B", 4)
                                  .Build();
  Feed(engine->get(), events);
  EXPECT_EQ((*engine)->stats().events_processed, 4u);
  EXPECT_EQ((*engine)->stats().outputs, 2u);
  EXPECT_GT((*engine)->stats().work_units, 0u);
}

TEST(EngineEdgeTest, ObjectAccountingReturnsToZeroAfterExpiry) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 100");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 0)
                                  .Add("A", 10)
                                  .Add("B", 5000)
                                  .Build();
  Feed(engine->get(), events);
  EXPECT_EQ((*engine)->stats().objects.current(), 0);
  EXPECT_EQ((*engine)->stats().objects.peak(), 2);
}

// --------------------------------------------------------------------------
// Duplicate-role and multi-role patterns
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, TypeBothStartAndTrigger) {
  // (A, B, A): an A instance is TRIG (pos 3) and START (pos 1) at once.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, A) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("B", 2)
                                  .Add("A", 3)
                                  .Add("B", 4)
                                  .Add("A", 5)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  // Triggers at every A. Counts: 0 (a1), 1 (a1,b1,a2), 1 + {a1 b1 a3,
  // a1 b2 a3, a2 b2 a3} = 4.
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(CountOf(outputs[0]), 0);
  EXPECT_EQ(CountOf(outputs[1]), 1);
  EXPECT_EQ(CountOf(outputs[2]), 4);

  // The stack baseline agrees.
  StackEngine stack(cq);
  std::vector<Output> stack_outputs = Feed(&stack, events);
  ASSERT_EQ(stack_outputs.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(CountOf(stack_outputs[i]), CountOf(outputs[i]));
  }
}

TEST(EngineEdgeTest, TypeBothPositiveAndNegated) {
  // (A, !B, B): a B instance completes matches with the *pre-arrival*
  // prefix counts (it is not strictly between itself and A), then
  // invalidates the (A) prefix for all later Bs.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, !B, B) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  ASSERT_TRUE(engine.ok());
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("B", 2)  // match (a1, b1); kills a1
                                  .Add("B", 3)  // no new match
                                  .Add("A", 4)
                                  .Add("B", 5)  // match (a2, b3)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 1);  // (a1,b2) blocked by b1 in between
  EXPECT_EQ(CountOf(outputs[2]), 2);

  // The brute-force oracle agrees at every point.
  NaiveEnumerator oracle(cq);
  EXPECT_EQ(oracle.CountMatches(events, 1, 2), 1u);
  EXPECT_EQ(oracle.CountMatches(events, 2, 3), 1u);
  EXPECT_EQ(oracle.CountMatches(events, 4, 5), 2u);
}

TEST(EngineEdgeTest, TripleDuplicateType) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, A, A) WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("A", 2)
                                  .Add("A", 3)
                                  .Add("A", 4)
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  // Triples after n events: C(n,3) = 0, 0, 1, 4.
  ASSERT_EQ(outputs.size(), 4u);
  EXPECT_EQ(CountOf(outputs[2]), 1);
  EXPECT_EQ(CountOf(outputs[3]), 4);
}

// --------------------------------------------------------------------------
// Window edge cases
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, HugeWindowNeverExpires) {
  Schema schema;
  CompiledQuery cq =
      MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 1000000s");
  auto engine = CreateAseqEngine(cq);
  StreamBuilder b(&schema);
  for (int i = 0; i < 50; ++i) b.Add("A", i * 1000);
  b.Add("B", 60 * 1000);
  std::vector<Output> outputs = Feed(engine->get(), b.Build());
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 50);
}

TEST(EngineEdgeTest, AllEventsExpireBetweenBursts) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 100");
  auto engine = CreateAseqEngine(cq);
  std::vector<Output> outputs = Feed(engine->get(), StreamBuilder(&schema)
                                                        .Add("A", 0)
                                                        .Add("B", 50)
                                                        .Add("A", 100000)
                                                        .Add("B", 100050)
                                                        .Build());
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 1);  // only the second burst's pair
}

TEST(EngineEdgeTest, EventExactlyAtWindowBoundaryForBaseline) {
  // The baseline and A-Seq must agree on the inclusive/exclusive boundary.
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B) WITHIN 100");
  std::vector<Event> events =
      StreamBuilder(&schema).Add("A", 0).Add("B", 100).Build();
  auto aseq = CreateAseqEngine(cq);
  StackEngine stack(cq);
  std::vector<Output> a = Feed(aseq->get(), events);
  std::vector<Output> s = Feed(&stack, events);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(CountOf(a[0]), 0);
  EXPECT_EQ(CountOf(s[0]), 0);
}

// --------------------------------------------------------------------------
// Grouping edges
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, GroupKeysOfMixedValueTypes) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY k AGG COUNT WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events =
      StreamBuilder(&schema)
          .Add("A", 1, {{"k", Value(1)}})
          .Add("A", 2, {{"k", Value("1")}})  // string "1" is a distinct group
          .Add("B", 3, {{"k", Value(1)}})
          .Add("B", 4, {{"k", Value("1")}})
          .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_TRUE(outputs[0].group->Equals(Value(1)));
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_TRUE(outputs[1].group->Equals(Value("1")));
  EXPECT_EQ(CountOf(outputs[1]), 1);
}

TEST(EngineEdgeTest, NumericGroupKeysCrossTypeEqual) {
  // int64 5 and double 5.0 are the same group (Value::Equals semantics).
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B) GROUP BY k AGG COUNT WITHIN 10s");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1, {{"k", Value(5)}})
                                  .Add("B", 2, {{"k", Value(5.0)}})
                                  .Build();
  std::vector<Output> outputs = Feed(engine->get(), events);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
}

// --------------------------------------------------------------------------
// Unbounded-window (DPC) long-run behavior
// --------------------------------------------------------------------------

TEST(EngineEdgeTest, DpcCountsAreMonotoneAndExact) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B)");
  auto engine = CreateAseqEngine(cq);
  StreamBuilder b(&schema);
  for (int i = 0; i < 200; ++i) {
    b.Add(i % 2 == 0 ? "A" : "B", i);
  }
  std::vector<Output> outputs = Feed(engine->get(), b.Build());
  ASSERT_EQ(outputs.size(), 100u);
  int64_t prev = -1;
  for (const Output& output : outputs) {
    EXPECT_GT(CountOf(output), prev);
    prev = CountOf(output);
  }
  // After k B's, count = sum_{i=1..k} i = k(k+1)/2.
  EXPECT_EQ(prev, 100 * 101 / 2);
}

TEST(EngineEdgeTest, MemoryStaysConstantUnderLongDpcRun) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C)");
  auto engine = CreateAseqEngine(cq);
  StreamBuilder b(&schema);
  for (int i = 0; i < 3000; ++i) b.Add(i % 3 == 0 ? "A" : (i % 3 == 1 ? "B" : "C"), i);
  Feed(engine->get(), b.Build());
  EXPECT_EQ((*engine)->stats().objects.peak(), 1);  // one PreCntr, ever
}

}  // namespace
}  // namespace aseq
