// The paper's worked examples, encoded end-to-end with hand-derived
// expected values. (Example 1 lives in stack_engine_test, Example 3 in
// aseq_engine_test, Example 4 in aseq_engine_test/prefix_counter_test;
// here: Example 2/Fig. 4 at engine level, Example 5/Fig. 8, Example 6+7/
// Fig. 9, and the Fig. 10 snapshot scenario with full hand arithmetic.)

#include <gtest/gtest.h>

#include "aseq/aseq_engine.h"
#include "baseline/naive_enumerator.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::CountOf;
using testing_util::MustCompile;
using testing_util::StreamBuilder;

// Example 2 / Fig. 4 — DPC over pattern (A, B, C, D), unbounded window.
// The arrival sequence a b c d b a a builds the figure's column
// (A=3, AB=2, ABC=1, ABCD=1); the next d then reports 1 + 1 = 2.
TEST(PaperExamplesTest, Example2Fig4AtEngineLevel) {
  Schema schema;
  CompiledQuery cq = MustCompile(&schema, "PATTERN SEQ(A, B, C, D)");
  auto engine = CreateAseqEngine(cq);
  std::vector<Event> events = StreamBuilder(&schema)
                                  .Add("A", 1)
                                  .Add("B", 2)
                                  .Add("C", 3)
                                  .Add("D", 4)  // -> 1
                                  .Add("B", 5)
                                  .Add("A", 6)
                                  .Add("A", 7)
                                  .Add("D", 8)  // -> 1 + ABC(1) = 2
                                  .Build();
  std::vector<Output> outputs = Runtime::RunEvents(events, engine->get()).outputs;
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);
  EXPECT_EQ(CountOf(outputs[1]), 2);
}

// Example 5 / Fig. 8 — the HPC structure: SEQ(A, B, C, D) with the
// equivalence test on `id`; three id values create three partitions, each
// with its own per-start prefix counters.
TEST(PaperExamplesTest, Example5Fig8HashedPrefixCounters) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema,
      "PATTERN SEQ(A, B, C, D) WHERE A.id = B.id = C.id = D.id WITHIN 7s");
  auto engine = CreateAseqEngine(cq);
  HpcEngine* hpc = static_cast<HpcEngine*>(engine->get());

  StreamBuilder b(&schema);
  // Three partitions; a complete sequence only in id=1.
  b.Add("A", 1000, {{"id", Value(1)}})
      .Add("A", 1100, {{"id", Value(3)}})
      .Add("A", 1200, {{"id", Value(2)}})
      .Add("B", 2000, {{"id", Value(1)}})
      .Add("B", 2100, {{"id", Value(3)}})
      .Add("C", 3000, {{"id", Value(1)}})
      .Add("D", 4000, {{"id", Value(1)}})   // id=1 completes: 1
      .Add("D", 4100, {{"id", Value(2)}});  // id=2 has only (A): 0
  std::vector<Output> outputs =
      Runtime::RunEvents(b.Build(), engine->get()).outputs;
  EXPECT_EQ(hpc->num_partitions(), 3u);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(CountOf(outputs[0]), 1);  // ungrouped: total across partitions
  EXPECT_EQ(CountOf(outputs[1]), 1);
}

// Example 6 + 7 / Fig. 9 — Q1/Q2 prefix sharing: the count of the shared
// (VK, BK) prefix is pipelined into both queries; hand-checked outputs.
TEST(PaperExamplesTest, Example7Fig9PreTreePipelinesSharedPrefix) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto make = [&](std::vector<std::string> names) {
    Query q;
    q.pattern = Pattern::FromNames(names);
    q.agg = AggregateSpec::Count();
    q.window_ms = 60000;
    return std::move(analyzer.Analyze(q)).value();
  };
  std::vector<CompiledQuery> queries = {
      make({"VK", "BK", "VC", "BC"}),  // Q1
      make({"VK", "BK", "VF"}),        // Q2
  };
  auto engine = PreTreeEngine::Create(queries);
  ASSERT_TRUE(engine.ok());
  // Shared node BK + branches (VC, BC) and (VF): 4 trie nodes.
  EXPECT_EQ((*engine)->num_trie_nodes(), 4u);

  StreamBuilder b(&schema);
  b.Add("VK", 1000)   // vk1
      .Add("BK", 2000)   // (VK,BK) = 1
      .Add("VK", 3000)   // vk2
      .Add("VF", 4000)   // Q2 trigger: (VK,BK,VF) = 1 (vk1 path only)
      .Add("VC", 5000)
      .Add("BK", 6000)   // (VK,BK) += (VK)... per-instance trees
      .Add("VF", 7000)   // Q2: (vk1,bk1,vf2), (vk1,bk2,vf2), (vk2,bk2,vf2) new
      .Add("BC", 8000);  // Q1 trigger: needs VC after BK: vc1 after bk1 only
  std::vector<MultiOutput> outputs =
      Runtime::RunMultiEvents(b.Build(), engine->get()).outputs;
  // Outputs: VF@4000 (Q2), VF@7000 (Q2), BC@8000 (Q1).
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(outputs[0].query_index, 1u);
  EXPECT_EQ(outputs[0].output.value.AsInt64(), 1);  // (vk1,bk1,vf1)
  EXPECT_EQ(outputs[1].query_index, 1u);
  // All (VK,BK) pairs before vf2: (vk1,bk1), (vk1,bk2), (vk2,bk2) plus the
  // old match = 1 + 3 = 4.
  EXPECT_EQ(outputs[1].output.value.AsInt64(), 4);
  EXPECT_EQ(outputs[2].query_index, 0u);
  // Q1 = (VK,BK,VC,BC): vc1@5000 extends pairs formed before it —
  // (vk1,bk1) only — then bc1 completes: 1.
  EXPECT_EQ(outputs[2].output.value.AsInt64(), 1);
}

// Fig. 10 — Chop-Connect snapshot maintenance for sub1 = (A,B,C),
// sub2 = (D,E), window 10s, with every number derived by hand (and
// cross-checked against the brute-force enumerator).
TEST(PaperExamplesTest, Fig10SnapshotMaintenanceHandChecked) {
  Schema schema;
  Analyzer analyzer(&schema);
  Query q;
  q.pattern = Pattern::FromNames({"A", "B", "C", "D", "E"});
  q.agg = AggregateSpec::Count();
  q.window_ms = 10000;
  CompiledQuery compiled = std::move(analyzer.Analyze(q)).value();

  ChopPlan plan;
  plan.segments.push_back({*schema.FindEventType("A"),
                           *schema.FindEventType("B"),
                           *schema.FindEventType("C")});
  plan.segments.push_back(
      {*schema.FindEventType("D"), *schema.FindEventType("E")});
  plan.query_segments.push_back({0, 1});
  auto engine = ChopConnectEngine::Create({compiled}, plan);
  ASSERT_TRUE(engine.ok());

  StreamBuilder b(&schema);
  b.Add("A", 1000)    // a1, exp 11000
      .Add("B", 2000)
      .Add("C", 3000)   // sub1 per a1: 1
      .Add("D", 4000)   // d1 snapshot: {a1: 1}
      .Add("A", 5000)   // a2, exp 15000
      .Add("B", 6000)   // a1: (A,B)=2; a2: (A,B)=1
      .Add("C", 7000)   // a1: (A,B,C)=1+2=3; a2: (A,B,C)=1
      .Add("D", 8000)   // d2 snapshot: {a1: 3, a2: 1}
      .Add("E", 9000)   // trigger: d1*1 + d2*(3+1) = 5
      .Add("E", 12000); // a1 expired: d1: 2*0; d2: 2*(a2: 1) = 2
  std::vector<Event> events = b.Build();
  std::vector<MultiOutput> outputs =
      Runtime::RunMultiEvents(events, engine->get()).outputs;
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0].output.value.AsInt64(), 5);
  EXPECT_EQ(outputs[1].output.value.AsInt64(), 2);

  // Cross-check both trigger points against the brute-force enumerator.
  NaiveEnumerator oracle(compiled);
  EXPECT_EQ(oracle.CountMatches(events, 8, 9000), 5u);
  EXPECT_EQ(oracle.CountMatches(events, 9, 12000), 2u);
}

// Sec. 5 — the SUM example: "assume for all sequence matches of pattern
// (A, B, C, D), we want the SUM value on event type C_weight".
TEST(PaperExamplesTest, Section5SumOverCarrierAttribute) {
  Schema schema;
  CompiledQuery cq = MustCompile(
      &schema, "PATTERN SEQ(A, B, C, D) AGG SUM(C.weight) WITHIN 60s");
  auto engine = CreateAseqEngine(cq);
  StreamBuilder b(&schema);
  b.Add("A", 1000)
      .Add("B", 2000)
      .Add("C", 3000, {{"weight", Value(10.0)}})
      .Add("C", 4000, {{"weight", Value(5.0)}})
      .Add("D", 5000);
  // Matches: (a,b,c1,d) weight 10 and (a,b,c2,d) weight 5 -> SUM 15.
  std::vector<Output> outputs =
      Runtime::RunEvents(b.Build(), engine->get()).outputs;
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs[0].value.AsDouble(), 15.0);
}

}  // namespace
}  // namespace aseq
