// Crash-recovery equivalence: for every engine, killing a run at an
// arbitrary stream offset, checkpointing, restoring into a freshly
// constructed engine, and replaying the trace tail must produce outputs
// and stats *byte-identical* to the uninterrupted run. The kill-offset
// matrix includes mid-batch offsets (not multiples of the batch size) and,
// for the reordering adapters, offsets where the K-slack buffer is
// non-empty — the snapshot must capture buffered events exactly.
//
// Checked per (engine, kill offset):
//   - combined outputs (prefix run + resumed tail) == uninterrupted outputs,
//     comparing (ts, seq, group, value) exactly — including float sums,
//     which forces the snapshot to reproduce hash-map iteration order;
//   - EngineStats match modulo the batch counters (a mid-batch kill
//     legitimately splits one batch into two).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aseq/aseq_engine.h"
#include "baseline/ecube_engine.h"
#include "baseline/stack_engine.h"
#include "ckpt/snapshot.h"
#include "common/rng.h"
#include "engine/change_detector.h"
#include "engine/reordering_engine.h"
#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/hybrid_engine.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "stream/workload.h"
#include "tests/test_util.h"

namespace aseq {
namespace {

using testing_util::MustCompile;

constexpr size_t kBatchSize = 64;

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

void ExpectOutputEqual(const Output& ref, const Output& got, size_t index,
                       const std::string& context) {
  EXPECT_EQ(ref.ts, got.ts) << context << " output#" << index;
  EXPECT_EQ(ref.seq, got.seq) << context << " output#" << index;
  ASSERT_EQ(ref.group.has_value(), got.group.has_value())
      << context << " output#" << index;
  if (ref.group.has_value()) {
    EXPECT_TRUE(ref.group->Equals(*got.group))
        << context << " output#" << index << ": group "
        << ref.group->ToString() << " vs " << got.group->ToString();
  }
  EXPECT_TRUE(ref.value.Equals(got.value))
      << context << " output#" << index << ": " << ref.value.ToString()
      << " vs " << got.value.ToString();
}

void ExpectOutputsEqual(const std::vector<Output>& ref,
                        const std::vector<Output>& got,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    ExpectOutputEqual(ref[i], got[i], i, context);
  }
}

void ExpectMultiOutputsEqual(const std::vector<MultiOutput>& ref,
                             const std::vector<MultiOutput>& got,
                             const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].query_index, got[i].query_index)
        << context << " output#" << i;
    ExpectOutputEqual(ref[i].output, got[i].output, i, context);
  }
}

/// Stats must match exactly except the batch counters: a kill mid-batch
/// splits that batch in two, so batches_processed may differ by one.
void ExpectStatsEqual(const EngineStats& ref, const EngineStats& got,
                      const std::string& context) {
  EXPECT_EQ(ref.events_processed, got.events_processed) << context;
  EXPECT_EQ(ref.outputs, got.outputs) << context;
  EXPECT_EQ(ref.work_units, got.work_units) << context;
  EXPECT_EQ(ref.dropped_events, got.dropped_events) << context;
  EXPECT_EQ(ref.objects.peak(), got.objects.peak()) << context;
  EXPECT_EQ(ref.objects.current(), got.objects.current()) << context;
}

/// Kill points: batch boundaries, mid-batch offsets, and the very first /
/// last event.
std::vector<size_t> KillOffsets(size_t n) {
  std::vector<size_t> offsets = {1, 37, kBatchSize, 100, 333, n / 2, n - 1};
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  offsets.erase(
      std::remove_if(offsets.begin(), offsets.end(),
                     [n](size_t k) { return k == 0 || k >= n; }),
      offsets.end());
  return offsets;
}

std::string SnapshotPath(const std::string& label, size_t kill) {
  return ::testing::TempDir() + "/recovery-" + label + "-" +
         std::to_string(kill) + ".aseqckpt";
}

BatchRunner MakeRunner(uint64_t start_offset = 0) {
  RunOptions options;
  options.batch_size = kBatchSize;
  options.start_offset = start_offset;
  return BatchRunner(options);
}

/// The full kill/checkpoint/destroy/restore/replay cycle for one engine
/// family. `finish` optionally drains end-of-stream state (reordering
/// adapters) and is applied identically to both runs.
void CheckRecovery(
    const std::function<std::unique_ptr<QueryEngine>()>& factory,
    const std::vector<Event>& events, const std::string& label,
    const std::function<void(QueryEngine*, std::vector<Output>*)>& finish =
        nullptr) {
  auto ref_engine = factory();
  BatchRunner ref_runner = MakeRunner();
  RunResult ref = ref_runner.RunEvents(events, ref_engine.get());
  if (finish) finish(ref_engine.get(), &ref.outputs);
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  for (size_t kill : KillOffsets(events.size())) {
    const std::string context = label + " @kill=" + std::to_string(kill);
    // Run the prefix, snapshot at the kill point, then destroy the engine —
    // the moral equivalent of SIGKILL after the last checkpoint.
    auto victim = factory();
    std::vector<Event> prefix(events.begin(),
                              events.begin() + static_cast<ptrdiff_t>(kill));
    BatchRunner prefix_runner = MakeRunner();
    RunResult pre = prefix_runner.RunEvents(prefix, victim.get());
    const std::string path = SnapshotPath(label, kill);
    Status saved = ckpt::SaveEngineSnapshot(path, *victim, kill);
    ASSERT_TRUE(saved.ok()) << context << ": " << saved.ToString();
    victim.reset();

    auto revived = factory();
    uint64_t offset = 0;
    Status restored = ckpt::RestoreEngineSnapshot(path, revived.get(), &offset);
    ASSERT_TRUE(restored.ok()) << context << ": " << restored.ToString();
    ASSERT_EQ(offset, kill) << context;

    std::vector<Event> tail(events.begin() + static_cast<ptrdiff_t>(kill),
                            events.end());
    BatchRunner tail_runner = MakeRunner(offset);
    RunResult post = tail_runner.RunEvents(tail, revived.get());
    if (finish) finish(revived.get(), &post.outputs);

    std::vector<Output> combined = pre.outputs;
    combined.insert(combined.end(), post.outputs.begin(), post.outputs.end());
    ExpectOutputsEqual(ref.outputs, combined, context);
    ExpectStatsEqual(ref_engine->stats(), revived->stats(), context);
    std::remove(path.c_str());
  }
}

/// Multi-query counterpart of CheckRecovery.
void CheckMultiRecovery(
    const std::function<std::unique_ptr<MultiQueryEngine>()>& factory,
    const std::vector<Event>& events, const std::string& label,
    const std::function<void(MultiQueryEngine*, std::vector<MultiOutput>*)>&
        finish = nullptr) {
  auto ref_engine = factory();
  BatchRunner ref_runner = MakeRunner();
  MultiRunResult ref = ref_runner.RunMultiEvents(events, ref_engine.get());
  if (finish) finish(ref_engine.get(), &ref.outputs);
  ASSERT_GT(ref.outputs.size(), 0u) << label << ": vacuous workload";

  for (size_t kill : KillOffsets(events.size())) {
    const std::string context = label + " @kill=" + std::to_string(kill);
    auto victim = factory();
    std::vector<Event> prefix(events.begin(),
                              events.begin() + static_cast<ptrdiff_t>(kill));
    BatchRunner prefix_runner = MakeRunner();
    MultiRunResult pre = prefix_runner.RunMultiEvents(prefix, victim.get());
    const std::string path = SnapshotPath(label, kill);
    Status saved = ckpt::SaveMultiSnapshot(path, *victim, kill);
    ASSERT_TRUE(saved.ok()) << context << ": " << saved.ToString();
    victim.reset();

    auto revived = factory();
    uint64_t offset = 0;
    Status restored = ckpt::RestoreMultiSnapshot(path, revived.get(), &offset);
    ASSERT_TRUE(restored.ok()) << context << ": " << restored.ToString();
    ASSERT_EQ(offset, kill) << context;

    std::vector<Event> tail(events.begin() + static_cast<ptrdiff_t>(kill),
                            events.end());
    BatchRunner tail_runner = MakeRunner(offset);
    MultiRunResult post = tail_runner.RunMultiEvents(tail, revived.get());
    if (finish) finish(revived.get(), &post.outputs);

    std::vector<MultiOutput> combined = pre.outputs;
    combined.insert(combined.end(), post.outputs.begin(), post.outputs.end());
    ExpectMultiOutputsEqual(ref.outputs, combined, context);
    ExpectStatsEqual(ref_engine->stats(), revived->stats(), context);
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

struct StockCase {
  Schema schema;
  std::vector<Event> events;
};

std::unique_ptr<StockCase> MakeStock(uint64_t seed, size_t n) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = seed;
  options.num_events = n;
  options.max_gap_ms = 8;
  options.num_traders = 6;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  return c;
}

std::unique_ptr<QueryEngine> MustCreateAseq(const CompiledQuery& cq) {
  auto engine = CreateAseqEngine(cq);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

struct MultiCase {
  Schema schema;
  SharedWorkload workload;
  std::vector<CompiledQuery> queries;
  std::vector<Event> events;
};

std::unique_ptr<MultiCase> MakeMulti(SharedWorkload workload, uint64_t seed,
                                     size_t n) {
  auto c = std::make_unique<MultiCase>();
  c->workload = std::move(workload);
  Analyzer analyzer(&c->schema);
  for (const Query& q : c->workload.queries) {
    auto cq = analyzer.Analyze(q);
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
    c->queries.push_back(std::move(cq).value());
  }
  StreamConfig config = MakeWorkloadStreamConfig(c->workload, seed, n, 0, 50);
  StreamGenerator gen(config, &c->schema);
  c->events = gen.Generate();
  AssignSeqNums(&c->events);
  return c;
}

// ---------------------------------------------------------------------------
// Single-query engines
// ---------------------------------------------------------------------------

TEST(RecoveryEquivalenceTest, AseqDpcUnbounded) {
  auto c = MakeStock(61, 900);
  CompiledQuery cq =
      MustCompile(&c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events, "aseq-dpc");
}

TEST(RecoveryEquivalenceTest, AseqSemWindowed) {
  auto c = MakeStock(62, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events, "aseq-sem");
}

TEST(RecoveryEquivalenceTest, AseqSemNegation) {
  auto c = MakeStock(63, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "aseq-sem-negation");
}

TEST(RecoveryEquivalenceTest, AseqSemSumAggregate) {
  auto c = MakeStock(64, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG SUM(IPIX.volume) WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "aseq-sem-sum");
}

TEST(RecoveryEquivalenceTest, HpcGroupByCount) {
  auto c = MakeStock(65, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "hpc-groupby");
}

// Float sums merged across grouped partitions are sensitive to hash-map
// iteration order; exact equality here proves the snapshot reproduces the
// restored map's node order, not just its contents.
TEST(RecoveryEquivalenceTest, HpcGroupBySumFloat) {
  auto c = MakeStock(66, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.price) "
      "WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "hpc-groupby-sum");
}

// High-cardinality grouped workloads drive the flat partition store through
// its full lifecycle across the kill-offset matrix: FlatMap growth and
// tombstone churn, slab freelist reuse, interner growth, and (for COUNT)
// the verbatim-serialized expiry heap. A kill at any offset must land in
// the middle of that churn and still restore byte-identically.
TEST(RecoveryEquivalenceTest, HpcGroupByCountHighCardinality) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = 68;
  options.num_events = 2000;
  options.max_gap_ms = 8;
  options.num_traders = 400;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 200ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "hpc-groupby-hicard");
}

// Same cardinality pressure, but SUM makes the slab's slot order directly
// observable through the floating-point merge order of every trigger scan.
TEST(RecoveryEquivalenceTest, HpcGroupBySumHighCardinality) {
  auto c = std::make_unique<StockCase>();
  StockStreamOptions options;
  options.seed = 69;
  options.num_events = 2000;
  options.max_gap_ms = 8;
  options.num_traders = 400;
  c->events = GenerateStockStream(options, &c->schema);
  AssignSeqNums(&c->events);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG SUM(IPIX.price) "
      "WITHIN 200ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events,
                "hpc-groupby-sum-hicard");
}

TEST(RecoveryEquivalenceTest, HpcEquivalencePredicate) {
  auto c = MakeStock(67, 1200);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX, AMAT) WHERE DELL.traderId = IPIX.traderId = "
      "AMAT.traderId AGG COUNT WITHIN 800ms");
  CheckRecovery([&] { return MustCreateAseq(cq); }, c->events, "hpc-equiv");
}

TEST(RecoveryEquivalenceTest, StackEngineJoinPredicate) {
  auto c = MakeStock(68, 900);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 800ms");
  CheckRecovery([&] { return std::make_unique<StackEngine>(cq); }, c->events,
                "stack-join");
}

TEST(RecoveryEquivalenceTest, StackEngineNegation) {
  auto c = MakeStock(69, 900);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 800ms");
  CheckRecovery([&] { return std::make_unique<StackEngine>(cq); }, c->events,
                "stack-negation");
}

// SUM through the stack engine's lazy-match table: float accumulation in
// lazy_matches_ iteration order (the second map whose node order the
// snapshot must reproduce exactly).
TEST(RecoveryEquivalenceTest, StackEngineLazySum) {
  auto c = MakeStock(70, 900);
  CompiledQuery cq = MustCompile(
      &c->schema,
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price "
      "AGG SUM(IPIX.price) WITHIN 800ms");
  CheckRecovery([&] { return std::make_unique<StackEngine>(cq); }, c->events,
                "stack-lazy-sum");
}

TEST(RecoveryEquivalenceTest, ChangeDetectingEngine) {
  auto c = MakeStock(71, 900);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 500ms");
  CheckRecovery(
      [&] {
        return std::make_unique<ChangeDetectingEngine>(MustCreateAseq(cq));
      },
      c->events, "change-detector");
}

// ---------------------------------------------------------------------------
// Reordering adapters: kills land while the K-slack buffer holds events
// ---------------------------------------------------------------------------

/// Displaces events by disjoint two-apart swaps: bounded disorder that a
/// 200ms K-slack absorbs without drops, keeping the buffer non-empty at
/// nearly every kill offset.
std::vector<Event> Shuffle(std::vector<Event> events, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i + 3 < events.size(); i += 3) {
    if (rng.NextBool(0.5)) std::swap(events[i], events[i + 2]);
  }
  AssignSeqNums(&events);
  return events;
}

TEST(RecoveryEquivalenceTest, ReorderingEngineMidSlack) {
  auto c = MakeStock(72, 900);
  std::vector<Event> shuffled = Shuffle(c->events, 17);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 800ms");
  CheckRecovery(
      [&] {
        return std::make_unique<ReorderingEngine>(MustCreateAseq(cq),
                                                  /*slack_ms=*/200);
      },
      shuffled, "reordering",
      [](QueryEngine* engine, std::vector<Output>* out) {
        static_cast<ReorderingEngine*>(engine)->Finish(out);
      });
}

TEST(RecoveryEquivalenceTest, ReorderingMultiEngineMidSlack) {
  auto c = MakeMulti(MakePrefixSharedWorkload(3, 2, 4, 2000), 73, 1000);
  std::vector<Event> shuffled = Shuffle(c->events, 19);
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto inner = NonSharedEngine::CreateAseq(c->queries);
        EXPECT_TRUE(inner.ok()) << inner.status().ToString();
        return std::make_unique<ReorderingMultiEngine>(
            std::move(inner).value(), /*slack_ms=*/300);
      },
      shuffled, "reordering-multi",
      [](MultiQueryEngine* engine, std::vector<MultiOutput>* out) {
        static_cast<ReorderingMultiEngine*>(engine)->Finish(out);
      });
}

// ---------------------------------------------------------------------------
// Multi-query engines
// ---------------------------------------------------------------------------

TEST(RecoveryEquivalenceTest, PreTreeEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(3, 2, 4, 2000), 74, 1000);
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = PreTreeEngine::Create(c->queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "pretree");
}

TEST(RecoveryEquivalenceTest, ChopConnectEngine) {
  auto c = MakeMulti(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 75, 1000);
  ChopPlan plan = PlanChopConnect(c->queries);
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = ChopConnectEngine::Create(c->queries, plan);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "chop-connect");
}

TEST(RecoveryEquivalenceTest, EcubeEngine) {
  auto c = MakeMulti(MakeSubstringSharedWorkload(3, 1, 2, 1, 1500), 76, 900);
  std::vector<EventTypeId> shared;
  for (const std::string& name : c->workload.shared_types) {
    shared.push_back(*c->schema.FindEventType(name));
  }
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = EcubeEngine::Create(c->queries, shared);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "ecube");
}

TEST(RecoveryEquivalenceTest, NonSharedAseqEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(3, 2, 4, 2000), 77, 1000);
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = NonSharedEngine::CreateAseq(c->queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      c->events, "nonshared");
}

TEST(RecoveryEquivalenceTest, NonSharedStackEngine) {
  auto c = MakeMulti(MakePrefixSharedWorkload(2, 2, 3, 1000), 78, 800);
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        return NonSharedEngine::CreateStackBased(c->queries);
      },
      c->events, "nonshared-stack");
}

TEST(RecoveryEquivalenceTest, HybridEngine) {
  Schema schema;
  StockStreamOptions options;
  options.seed = 79;
  options.num_events = 1200;
  options.max_gap_ms = 8;
  options.num_traders = 5;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);

  // Mixed workload exercising every routing path (PreTree, ChopConnect,
  // per-query A-Seq, stack fallback) inside one hybrid engine.
  std::vector<const char*> texts = {
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX, QQQ) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(INTC, MSFT, CSCO) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(ORCL, MSFT, CSCO) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, !QQQ, AMAT) AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX) GROUP BY traderId AGG COUNT WITHIN 1s",
      "PATTERN SEQ(DELL, IPIX) WHERE DELL.price < IPIX.price AGG COUNT "
      "WITHIN 1s",
  };
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> queries;
  for (const char* text : texts) {
    auto cq = analyzer.AnalyzeText(text);
    ASSERT_TRUE(cq.ok()) << text << ": " << cq.status().ToString();
    queries.push_back(std::move(cq).value());
  }
  CheckMultiRecovery(
      [&]() -> std::unique_ptr<MultiQueryEngine> {
        auto engine = HybridMultiEngine::Create(queries);
        EXPECT_TRUE(engine.ok()) << engine.status().ToString();
        return std::move(engine).value();
      },
      events, "hybrid");
}

// ---------------------------------------------------------------------------
// Restore rejects mismatched configurations
// ---------------------------------------------------------------------------

TEST(RecoveryEquivalenceTest, RestoreRejectsWrongEngine) {
  auto c = MakeStock(80, 400);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 800ms");
  auto aseq = MustCreateAseq(cq);
  BatchRunner runner = MakeRunner();
  runner.RunEvents(c->events, aseq.get());
  const std::string path = SnapshotPath("wrong-engine", 0);
  ASSERT_TRUE(ckpt::SaveEngineSnapshot(path, *aseq, c->events.size()).ok());

  StackEngine stack(cq);
  uint64_t offset = 0;
  Status restored = ckpt::RestoreEngineSnapshot(path, &stack, &offset);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.message().find("A-Seq"), std::string::npos)
      << restored.ToString();
  std::remove(path.c_str());
}

TEST(RecoveryEquivalenceTest, RestoreRejectsWrongSlack) {
  auto c = MakeStock(81, 400);
  CompiledQuery cq = MustCompile(
      &c->schema, "PATTERN SEQ(DELL, IPIX) AGG COUNT WITHIN 800ms");
  ReorderingEngine original(MustCreateAseq(cq), /*slack_ms=*/200);
  BatchRunner runner = MakeRunner();
  runner.RunEvents(c->events, &original);
  const std::string path = SnapshotPath("wrong-slack", 0);
  ASSERT_TRUE(
      ckpt::SaveEngineSnapshot(path, original, c->events.size()).ok());

  ReorderingEngine different(MustCreateAseq(cq), /*slack_ms=*/500);
  uint64_t offset = 0;
  Status restored = ckpt::RestoreEngineSnapshot(path, &different, &offset);
  EXPECT_FALSE(restored.ok());
  EXPECT_NE(restored.message().find("slack"), std::string::npos)
      << restored.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aseq
