// Tests for the telemetry layer (src/obs/): histogram bucket math and
// concurrent snapshot safety, the metrics emitter's JSONL schema, and the
// chrome://tracing writer's output format.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/emitter.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"

namespace aseq {
namespace obs {
namespace {

// --------------------------------------------------------------------------
// LogHistogram bucket math
// --------------------------------------------------------------------------

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets get one bucket each: zero quantization error.
  for (uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::BucketFor(v), v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(v), v);
    EXPECT_EQ(LogHistogram::BucketUpperBound(v), v);
  }
}

TEST(LogHistogramTest, BucketBoundsRoundTrip) {
  // Every bucket's lower bound maps back to that bucket, bounds tile the
  // value axis without gaps, and indices are monotone in the value.
  uint64_t prev_upper = 0;
  for (size_t b = 0; b < LogHistogram::kNumBuckets; ++b) {
    const uint64_t lo = LogHistogram::BucketLowerBound(b);
    const uint64_t hi = LogHistogram::BucketUpperBound(b);
    ASSERT_LE(lo, hi) << "bucket " << b;
    ASSERT_EQ(LogHistogram::BucketFor(lo), b);
    ASSERT_EQ(LogHistogram::BucketFor(hi), b);
    if (b > 0) {
      ASSERT_EQ(lo, prev_upper + 1) << "gap before bucket " << b;
    }
    prev_upper = hi;
  }
}

TEST(LogHistogramTest, QuantizationErrorBounded) {
  // Above the exact range, the bucket width is bounded by lo / kSubBuckets,
  // so reporting the upper bound over-states by at most 1/kSubBuckets.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng() >> (rng() % 40);  // spread across magnitudes
    const size_t b = LogHistogram::BucketFor(v);
    const uint64_t lo = LogHistogram::BucketLowerBound(b);
    const uint64_t hi = LogHistogram::BucketUpperBound(b);
    if (v >= (uint64_t{1} << LogHistogram::kMaxValueBits)) {
      continue;  // clamped range reports the cap
    }
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    const double rel_width = static_cast<double>(hi - lo) /
                             static_cast<double>(lo == 0 ? 1 : lo);
    ASSERT_LE(rel_width, 1.0 / LogHistogram::kSubBuckets + 1e-12)
        << "v=" << v << " bucket=" << b;
  }
}

TEST(LogHistogramTest, HugeValuesClampToCap) {
  LogHistogram h;
  h.Record(UINT64_MAX);
  LogHistogram::Snapshot snap;
  h.SnapshotInto(&snap);
  EXPECT_EQ(snap.count, 1u);
  // The bucket index stays in range; max keeps the true recorded value.
  EXPECT_EQ(snap.max, UINT64_MAX);
  EXPECT_EQ(LogHistogram::BucketFor(UINT64_MAX),
            LogHistogram::kNumBuckets - 1);
}

TEST(LogHistogramTest, QuantilesOnKnownDistribution) {
  LogHistogram h;
  // 1..100: quantiles land on predictable ranks; small values are exact
  // below 16 and within 1/16 above.
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  LogHistogram::Snapshot snap;
  h.SnapshotInto(&snap);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
  const uint64_t p50 = snap.ValueAtQuantile(0.50);
  const uint64_t p99 = snap.ValueAtQuantile(0.99);
  EXPECT_GE(p50, 50u);
  EXPECT_LE(p50, 53u);  // bucket upper bound, ≤6.25% over
  EXPECT_GE(p99, 99u);
  EXPECT_LE(p99, 103u);
  // q=1.0 is tightened to the tracked exact maximum.
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 100u);
  // Empty histogram reports zero for any quantile.
  LogHistogram empty;
  LogHistogram::Snapshot es;
  empty.SnapshotInto(&es);
  EXPECT_EQ(es.ValueAtQuantile(0.99), 0u);
}

TEST(LogHistogramTest, MergeFoldsCountsSumsAndMax) {
  LogHistogram a, b;
  for (uint64_t v = 0; v < 50; ++v) a.Record(v);
  for (uint64_t v = 1000; v < 1100; ++v) b.Record(v);
  a.Merge(b);
  LogHistogram::Snapshot snap;
  a.SnapshotInto(&snap);
  EXPECT_EQ(snap.count, 150u);
  EXPECT_EQ(snap.max, 1099u);
  uint64_t expected_sum = 0;
  for (uint64_t v = 0; v < 50; ++v) expected_sum += v;
  for (uint64_t v = 1000; v < 1100; ++v) expected_sum += v;
  EXPECT_EQ(snap.sum, expected_sum);
  a.Reset();
  a.SnapshotInto(&snap);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max, 0u);
}

// One writer records while a reader snapshots concurrently — the contract
// the emitter thread relies on. Run under TSan via the `shard` CI label.
// The reader's clamped view must always be internally consistent: the
// quantile rank derived from `count` lands in a populated bucket.
TEST(LogHistogramTest, ConcurrentRecordAndSnapshot) {
  LogHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937_64 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) h.Record(rng() % 100000);
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    LogHistogram::Snapshot snap;
    h.SnapshotInto(&snap);
    uint64_t bucket_sum = 0;
    for (uint64_t c : snap.counts) bucket_sum += c;
    // SnapshotInto clamps the aggregate count to the bucket sum so ranks
    // always resolve.
    ASSERT_LE(snap.count, bucket_sum);
    if (snap.count > 0) {
      ASSERT_GT(snap.ValueAtQuantile(0.99), 0u);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  LogHistogram::Snapshot final_snap;
  h.SnapshotInto(&final_snap);
  uint64_t bucket_sum = 0;
  for (uint64_t c : final_snap.counts) bucket_sum += c;
  EXPECT_EQ(final_snap.count, bucket_sum);  // quiescent: exact agreement
}

TEST(CounterGaugeTest, Basics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
  Gauge g;
  g.Set(42);
  EXPECT_EQ(g.value(), 42u);
  g.Set(1);
  EXPECT_EQ(g.value(), 1u);
}

TEST(TelemetryTest, RegistryShapesAndClamps) {
  Telemetry tel(3);
  EXPECT_EQ(tel.num_shards(), 3u);
  tel.shard(0).ops.Add(1);
  tel.shard(7).ops.Add(1);  // out-of-range index clamps to shard 0
  EXPECT_EQ(tel.shard(0).ops.value(), 2u);
  Telemetry zero(0);  // degenerate shard count still yields one cell
  EXPECT_EQ(zero.num_shards(), 1u);
}

// --------------------------------------------------------------------------
// MetricsEmitter JSONL output
// --------------------------------------------------------------------------

std::string TempPath(const char* stem) {
  return testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".tmp";
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Minimal structural JSON check: one object per line, balanced braces and
// brackets outside strings, even quote count. A full parse happens in CI
// (scripts/check_metrics.py); here we guard the invariants cheaply.
bool LooksLikeJsonObject(const std::string& s) {
  if (s.empty() || s.front() != '{' || s.back() != '}') return false;
  int depth = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char ch : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    if (depth < 0 || brackets < 0) return false;
  }
  return depth == 0 && brackets == 0 && !in_string;
}

// Extracts the integer value of `"key":N` from a JSON line (first match).
uint64_t JsonInt(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " in " << line;
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

TEST(MetricsEmitterTest, EmitsParseableMonotonicSeries) {
  const std::string path = TempPath("emitter");
  Telemetry tel(2);
  {
    MetricsEmitter emitter(path, 5, &tel, "\"label\":\"test\"");
    ASSERT_TRUE(emitter.ok());
    tel.set_emitter(&emitter);
    emitter.Start();
    // Simulate the single-writer cells advancing between intervals.
    std::mt19937_64 rng(11);
    for (int round = 0; round < 5; ++round) {
      for (size_t s = 0; s < 2; ++s) {
        ShardCell& cell = tel.shard(s);
        cell.ops.Add(10 + s);
        cell.events.Add(8);
        cell.busy_ns.Add(1000);
        cell.ring_occupancy.Set(round);
        for (int i = 0; i < 20; ++i) cell.op_service_ns.Record(rng() % 5000);
      }
      tel.coord().batches.Add(1);
      tel.coord().admit_ns.Record(1500);
      emitter.Flush();  // deterministic interval per round
    }
    emitter.Stop();
    emitter.AppendLine("{\"type\":\"utilization\",\"data\":{}}");
  }

  const std::vector<std::string> lines = ReadLines(path);
  // Header + ≥5 flush intervals × (2 shard rows + 1 coord row) + summary.
  ASSERT_GE(lines.size(), 1u + 5u * 3u + 1u);
  EXPECT_NE(lines[0].find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"shards\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\":\"test\""), std::string::npos);

  uint64_t last_ops[2] = {0, 0};
  uint64_t last_batches = 0;
  uint64_t last_interval = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(LooksLikeJsonObject(line)) << line;
    if (line.find("\"type\":\"shard\"") != std::string::npos) {
      const uint64_t shard = JsonInt(line, "shard");
      ASSERT_LT(shard, 2u);
      const uint64_t ops = JsonInt(line, "ops");
      // Cumulative counters: never decrease across intervals.
      EXPECT_GE(ops, last_ops[shard]) << line;
      last_ops[shard] = ops;
      EXPECT_GE(JsonInt(line, "interval"), last_interval);
      last_interval = JsonInt(line, "interval");
      // Histogram sub-objects carry the full readout schema.
      for (const char* k : {"count", "mean", "p50", "p95", "p99", "max"}) {
        EXPECT_NE(line.find(std::string("\"") + k + "\":"),
                  std::string::npos)
            << k << " missing in " << line;
      }
    } else if (line.find("\"type\":\"coord\"") != std::string::npos) {
      const uint64_t batches = JsonInt(line, "batches");
      EXPECT_GE(batches, last_batches);
      last_batches = batches;
    }
  }
  EXPECT_EQ(last_ops[0], tel.shard(0).ops.value());
  EXPECT_NE(lines.back().find("\"type\":\"utilization\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsEmitterTest, PeriodicThreadEmitsWithoutFlush) {
  const std::string path = TempPath("emitter_periodic");
  Telemetry tel(1);
  {
    MetricsEmitter emitter(path, 1, &tel);
    ASSERT_TRUE(emitter.ok());
    emitter.Start();
    // Give the 1ms thread time for several intervals.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    emitter.Stop();
  }
  const std::vector<std::string> lines = ReadLines(path);
  // Header + at least two intervals of (1 shard + 1 coord).
  EXPECT_GE(lines.size(), 1u + 2u * 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(LooksLikeJsonObject(line)) << line;
  }
  std::remove(path.c_str());
}

TEST(MetricsEmitterTest, UnwritablePathReportsNotOk) {
  Telemetry tel(1);
  MetricsEmitter emitter("/nonexistent-dir/metrics.jsonl", 100, &tel);
  EXPECT_FALSE(emitter.ok());
  emitter.Start();  // all entry points are no-ops when not ok
  emitter.Flush();
  emitter.Stop();
}

// --------------------------------------------------------------------------
// TraceWriter
// --------------------------------------------------------------------------

TEST(TraceWriterTest, EmitsValidJsonArrayWithMetadata) {
  const std::string path = TempPath("trace");
  const uint64_t epoch = MonotonicNanos();
  {
    TraceWriter trace(path, epoch, 2);
    ASSERT_TRUE(trace.ok());
    trace.Span("batch", TraceWriter::kCoordTid, epoch + 1000, epoch + 51000,
               {TraceWriter::NumArg("seq", 7)});
    trace.Instant("restart", 1, epoch + 60000,
                  {{"cause", "crash \"quoted\""},
                   TraceWriter::NumArg("attempt", 2)});
    trace.Close();
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.substr(text.size() - 2), "]\n");
  // Thread metadata for both shards plus the coordinator row.
  EXPECT_NE(text.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(text.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(text.find("\"coordinator\""), std::string::npos);
  // The span is a complete event with µs duration 50.
  EXPECT_NE(text.find("\"name\":\"batch\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(text.find("\"seq\":7"), std::string::npos);  // NumArg unquoted
  // The instant escapes its string arg.
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("crash \\\"quoted\\\""), std::string::npos);
  // Structurally valid JSON: balanced delimiters outside strings.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    if (ch == '[' || ch == '{') ++depth;
    if (ch == ']' || ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(TraceWriterTest, CloseIsIdempotentAndDropsLateEvents) {
  const std::string path = TempPath("trace_closed");
  TraceWriter trace(path, 0, 1);
  ASSERT_TRUE(trace.ok());
  trace.Close();
  trace.Close();
  trace.Instant("late", 0, 1000);  // silently dropped after close
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str().find("late"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace aseq
