#include <gtest/gtest.h>

#include "query/analyzer.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace aseq {
namespace {

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto result = Tokenize("SEQ(A, !B) <= >= != = 3 2.5 'str'");
  ASSERT_TRUE(result.ok());
  const auto& toks = *result;
  ASSERT_GE(toks.size(), 13u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "SEQ");
  EXPECT_EQ(toks[1].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[3].kind, TokenKind::kComma);
  EXPECT_EQ(toks[4].kind, TokenKind::kBang);
  EXPECT_EQ(toks[6].kind, TokenKind::kRParen);
  EXPECT_EQ(toks[7].kind, TokenKind::kLe);
  EXPECT_EQ(toks[8].kind, TokenKind::kGe);
  EXPECT_EQ(toks[9].kind, TokenKind::kNe);
  EXPECT_EQ(toks[10].kind, TokenKind::kEq);
  EXPECT_EQ(toks[11].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[11].int_value, 3);
  EXPECT_EQ(toks[12].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[12].float_value, 2.5);
  EXPECT_EQ(toks[13].kind, TokenKind::kString);
  EXPECT_EQ(toks[13].text, "str");
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, DurationSuffixSplits) {
  auto result = Tokenize("10s");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*result)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*result)[1].text, "s");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto result = Tokenize("A # B");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto result = Tokenize("pattern");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)[0].IsKeyword("PATTERN"));
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

TEST(ParserTest, MinimalQuery) {
  auto result = ParseQuery("PATTERN SEQ(A, B, C)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& q = *result;
  ASSERT_EQ(q.pattern.size(), 3u);
  EXPECT_EQ(q.pattern.elements()[0].type_name, "A");
  EXPECT_FALSE(q.pattern.elements()[0].negated);
  EXPECT_EQ(q.agg.func, AggFunc::kCount);
  EXPECT_EQ(q.window_ms, 0);
  EXPECT_FALSE(q.group_by.has_value());
}

TEST(ParserTest, NegationInPattern) {
  auto result = ParseQuery("PATTERN SEQ(DELL, IPIX, !QQQ, AMAT)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->pattern.size(), 4u);
  EXPECT_TRUE(result->pattern.elements()[2].negated);
  EXPECT_EQ(result->pattern.elements()[2].type_name, "QQQ");
  EXPECT_TRUE(result->pattern.has_negation());
  EXPECT_EQ(result->pattern.num_positive(), 3u);
}

TEST(ParserTest, PaperNetworkSecurityQuery) {
  // Application I, Sec. 1, with the paper's angle-bracket clause wrappers.
  auto result = ParseQuery(
      "PATTERN <SEQ(TypeUsername,TypePassword,ClickSubmit)> "
      "WHERE <TypePassword.value != TypeUsername.Password> "
      "GROUP BY <IP> "
      "AGG COUNT "
      "WITHIN 10s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->pattern.size(), 3u);
  ASSERT_EQ(result->where.terms.size(), 1u);
  EXPECT_EQ(result->where.terms[0].op, CmpOp::kNe);
  ASSERT_TRUE(result->group_by.has_value());
  EXPECT_EQ(result->group_by->attr_name, "IP");
  EXPECT_EQ(result->window_ms, 10000);
}

TEST(ParserTest, PaperECommerceQueryChainedEquality) {
  // Application II: the equality chain expands into pairwise terms.
  auto result = ParseQuery(
      "PATTERN SEQ(Kindle, KindleCase, Stylus) "
      "WHERE Kindle.userId = KindleCase.userId = Stylus.userId "
      "AGG COUNT WITHIN 1hour");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->where.terms.size(), 2u);
  EXPECT_EQ(result->where.terms[0].lhs.elem_name, "Kindle");
  EXPECT_EQ(result->where.terms[0].rhs.elem_name, "KindleCase");
  EXPECT_EQ(result->where.terms[1].lhs.elem_name, "KindleCase");
  EXPECT_EQ(result->where.terms[1].rhs.elem_name, "Stylus");
  EXPECT_EQ(result->window_ms, 3600 * 1000);
}

TEST(ParserTest, AggFunctions) {
  auto sum = ParseQuery("PATTERN SEQ(A, B) AGG SUM(B.weight) WITHIN 5s");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->agg.func, AggFunc::kSum);
  EXPECT_EQ(sum->agg.elem_name, "B");
  EXPECT_EQ(sum->agg.attr_name, "weight");

  auto avg = ParseQuery("PATTERN SEQ(A, B) AGG AVG(B.w)");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->agg.func, AggFunc::kAvg);
  auto mn = ParseQuery("PATTERN SEQ(A, B) AGG MIN(A.w)");
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn->agg.func, AggFunc::kMin);
  auto mx = ParseQuery("PATTERN SEQ(A, B) AGG max(A.w)");
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->agg.func, AggFunc::kMax);
  auto cnt = ParseQuery("PATTERN SEQ(A, B) AGG COUNT()");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(cnt->agg.func, AggFunc::kCount);
}

TEST(ParserTest, WindowUnits) {
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 1500")->window_ms, 1500);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 1500ms")->window_ms, 1500);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 10s")->window_ms, 10000);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 2min")->window_ms, 120000);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 1hour")->window_ms, 3600000);
  EXPECT_EQ(ParseQuery("PATTERN SEQ(A,B) WITHIN 1.5s")->window_ms, 1500);
}

TEST(ParserTest, LocalPredicatesWithLiterals) {
  auto result = ParseQuery(
      "PATTERN SEQ(Kindle, Case) WHERE Kindle.model = 'touch' AND "
      "Case.price < 20 AGG COUNT WITHIN 1s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->where.terms.size(), 2u);
  EXPECT_EQ(result->where.terms[0].rhs.literal.AsString(), "touch");
  EXPECT_EQ(result->where.terms[1].op, CmpOp::kLt);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SEQ(A, B)").ok());             // missing PATTERN
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A, B").ok());      // unbalanced
  EXPECT_FALSE(ParseQuery("PATTERN SEQ()").ok());         // empty pattern
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) WITHIN").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) WITHIN 5parsec").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) WITHIN 0s").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) AGG MEDIAN(A.x)").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) trailing junk").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A,B) WHERE A.x").ok());  // no cmp
}

TEST(ParserTest, RoundTripViaToString) {
  const char* text =
      "PATTERN SEQ(A, !B, C) WHERE A.id = C.id GROUP BY ip AGG COUNT "
      "WITHIN 2s";
  auto q1 = ParseQuery(text);
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseQuery(q1->ToString());
  ASSERT_TRUE(q2.ok()) << "canonical text failed to reparse: "
                       << q1->ToString();
  EXPECT_EQ(q1->ToString(), q2->ToString());
  EXPECT_TRUE(q1->pattern == q2->pattern);
}

TEST(ParseDurationTest, Standalone) {
  EXPECT_EQ(*ParseDuration("250"), 250);
  EXPECT_EQ(*ParseDuration("10 s"), 10000);
  EXPECT_EQ(*ParseDuration("3 minutes"), 180000);
  EXPECT_FALSE(ParseDuration("abc").ok());
  EXPECT_FALSE(ParseDuration("-5s").ok());
}

// --------------------------------------------------------------------------
// Analyzer
// --------------------------------------------------------------------------

TEST(AnalyzerTest, ResolvesTypesAndRoles) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText("PATTERN SEQ(A, B, C) WITHIN 1s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CompiledQuery& cq = *result;
  EXPECT_EQ(cq.num_positive(), 3u);
  EventTypeId b = *schema.FindEventType("B");
  const std::vector<Role>* roles = cq.FindRoles(b);
  ASSERT_NE(roles, nullptr);
  ASSERT_EQ(roles->size(), 1u);
  EXPECT_FALSE((*roles)[0].negated);
  EXPECT_EQ((*roles)[0].position, 2u);
  EXPECT_EQ(cq.FindRoles(9999), nullptr);
}

TEST(AnalyzerTest, NegationRoles) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText("PATTERN SEQ(A, B, !X, C) WITHIN 1s");
  ASSERT_TRUE(result.ok());
  const std::vector<Role>* roles = result->FindRoles(*schema.FindEventType("X"));
  ASSERT_NE(roles, nullptr);
  ASSERT_EQ(roles->size(), 1u);
  EXPECT_TRUE((*roles)[0].negated);
  EXPECT_EQ((*roles)[0].position, 2u);  // resets prefix (A, B)
  EXPECT_EQ(result->num_positive(), 3u);
}

TEST(AnalyzerTest, DuplicateTypeRolesDescending) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText("PATTERN SEQ(A, B, A) WITHIN 1s");
  ASSERT_TRUE(result.ok());
  const std::vector<Role>* roles = result->FindRoles(*schema.FindEventType("A"));
  ASSERT_EQ(roles->size(), 2u);
  EXPECT_EQ((*roles)[0].position, 3u);  // descending positions
  EXPECT_EQ((*roles)[1].position, 1u);
}

TEST(AnalyzerTest, RejectsLeadingOrTrailingNegation) {
  Schema schema;
  Analyzer analyzer(&schema);
  EXPECT_FALSE(analyzer.AnalyzeText("PATTERN SEQ(!A, B)").ok());
  EXPECT_FALSE(analyzer.AnalyzeText("PATTERN SEQ(A, !B)").ok());
  EXPECT_TRUE(analyzer.AnalyzeText("PATTERN SEQ(A, !B, C)").ok());
}

TEST(AnalyzerTest, ClassifiesLocalPredicates) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, B) WHERE A.x > 5 AND B.y = 'z' WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_join_predicates());
  EXPECT_FALSE(result->partitioned());
  EXPECT_EQ(result->local_predicates()[0].size(), 1u);
  EXPECT_EQ(result->local_predicates()[1].size(), 1u);
}

TEST(AnalyzerTest, LocalPredicateFiltersEvents) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result =
      analyzer.AnalyzeText("PATTERN SEQ(A, B) WHERE A.x > 5 WITHIN 1s");
  ASSERT_TRUE(result.ok());
  Event pass(*schema.FindEventType("A"), 0);
  pass.SetAttr(*schema.FindAttribute("x"), Value(6));
  Event fail(*schema.FindEventType("A"), 0);
  fail.SetAttr(*schema.FindAttribute("x"), Value(5));
  Event missing(*schema.FindEventType("A"), 0);
  EXPECT_TRUE(result->QualifiesFor(pass, 0));
  EXPECT_FALSE(result->QualifiesFor(fail, 0));
  EXPECT_FALSE(result->QualifiesFor(missing, 0));
}

TEST(AnalyzerTest, FullEquivalenceClassBecomesPartition) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, B, C) WHERE A.id = B.id = C.id WITHIN 1s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partitioned());
  EXPECT_FALSE(result->has_join_predicates());
  ASSERT_EQ(result->partition_spec().parts.size(), 1u);
  EXPECT_FALSE(result->partition_spec().per_group_output);
}

TEST(AnalyzerTest, PartialEquivalenceDemotesToJoin) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result =
      analyzer.AnalyzeText("PATTERN SEQ(A, B, C) WHERE A.id = B.id WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->partitioned());
  EXPECT_TRUE(result->has_join_predicates());
}

TEST(AnalyzerTest, CrossAttributeEqualityIsJoin) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result =
      analyzer.AnalyzeText("PATTERN SEQ(A, B) WHERE A.x = B.y WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_join_predicates());
}

TEST(AnalyzerTest, NonEqualityCrossElementIsJoin) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result =
      analyzer.AnalyzeText("PATTERN SEQ(A, B) WHERE A.x < B.x WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_join_predicates());
}

TEST(AnalyzerTest, GroupByCoversAllElements) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, !X, B) GROUP BY ip AGG COUNT WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partitioned());
  EXPECT_TRUE(result->partition_spec().per_group_output);
  ASSERT_EQ(result->partition_spec().parts.size(), 1u);
  const auto& part = result->partition_spec().parts[0];
  EXPECT_TRUE(part.is_group_by);
  for (bool covers : part.covers_elem) EXPECT_TRUE(covers);
}

TEST(AnalyzerTest, EquivalenceChainThroughNegatedElement) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, !X, B) WHERE A.id = X.id = B.id WITHIN 1s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partitioned());
  const auto& part = result->partition_spec().parts[0];
  EXPECT_TRUE(part.covers_elem[0]);
  EXPECT_TRUE(part.covers_elem[1]);  // the negated element is constrained
  EXPECT_TRUE(part.covers_elem[2]);
}

TEST(AnalyzerTest, AggCarrierResolution) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, B, C, D) AGG SUM(C.weight) WITHIN 1s");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->agg_positive_pos(), 2);
  EXPECT_EQ(result->agg().elem_index, 2);

  // Carrier on a negated element is rejected.
  EXPECT_FALSE(
      analyzer.AnalyzeText("PATTERN SEQ(A, !B, C) AGG SUM(B.w)").ok());
  // Carrier not in the pattern.
  EXPECT_FALSE(analyzer.AnalyzeText("PATTERN SEQ(A, B) AGG SUM(Z.w)").ok());
}

TEST(AnalyzerTest, AmbiguousReferenceRejected) {
  Schema schema;
  Analyzer analyzer(&schema);
  EXPECT_FALSE(
      analyzer.AnalyzeText("PATTERN SEQ(A, B, A) WHERE A.x > 1").ok());
  EXPECT_FALSE(analyzer.AnalyzeText("PATTERN SEQ(A, B, A) AGG SUM(A.x)").ok());
}

TEST(AnalyzerTest, ConstantPredicates) {
  Schema schema;
  Analyzer analyzer(&schema);
  // Constantly true terms are dropped.
  auto ok = analyzer.AnalyzeText("PATTERN SEQ(A, B) WHERE 1 = 1 WITHIN 1s");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok->has_join_predicates());
  // Constantly false clauses are an error.
  EXPECT_FALSE(analyzer.AnalyzeText("PATTERN SEQ(A, B) WHERE 1 = 2").ok());
}

TEST(AnalyzerTest, JoinPredicateOnNegatedElementRejected) {
  Schema schema;
  Analyzer analyzer(&schema);
  EXPECT_FALSE(
      analyzer.AnalyzeText("PATTERN SEQ(A, !X, B) WHERE A.v < X.v").ok());
}

TEST(AnalyzerTest, PartitionKeyRouting) {
  Schema schema;
  Analyzer analyzer(&schema);
  auto result = analyzer.AnalyzeText(
      "PATTERN SEQ(A, B) WHERE A.id = B.id GROUP BY ip WITHIN 1s");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->partition_spec().parts.size(), 2u);
  Event e(*schema.FindEventType("A"), 0);
  e.SetAttr(*schema.FindAttribute("id"), Value(7));
  e.SetAttr(*schema.FindAttribute("ip"), Value("10.0.0.1"));
  PartitionKey key;
  ASSERT_TRUE(result->PartitionKeyFor(e, 0, &key));
  ASSERT_EQ(key.parts.size(), 2u);
  // One part is the equivalence id, the other the group-by ip.
  int group_part = result->partition_spec().group_part;
  EXPECT_TRUE(key.parts[group_part].Equals(Value("10.0.0.1")));
  EXPECT_TRUE(key.parts[1 - group_part].Equals(Value(7)));

  Event missing(*schema.FindEventType("A"), 0);
  missing.SetAttr(*schema.FindAttribute("id"), Value(7));
  EXPECT_FALSE(result->PartitionKeyFor(missing, 0, &key));
}

}  // namespace
}  // namespace aseq
