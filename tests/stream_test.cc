#include <gtest/gtest.h>

#include <set>

#include "stream/clickstream.h"
#include "stream/generator.h"
#include "stream/stock_stream.h"
#include "stream/stream_source.h"
#include "stream/trace_io.h"
#include "stream/workload.h"

namespace aseq {
namespace {

StreamConfig SmallConfig(uint64_t seed) {
  StreamConfig config;
  config.seed = seed;
  config.num_events = 500;
  config.min_gap_ms = 0;
  config.max_gap_ms = 3;
  config.types = {{"A", 1.0}, {"B", 2.0}, {"C", 1.0}};
  config.attrs.push_back(AttrSpec::IntUniform("id", 0, 4));
  config.attrs.push_back(AttrSpec::DoubleUniform("w", 1.0, 2.0));
  config.attrs.push_back(AttrSpec::RandomWalk("price", 50.0, 1.0));
  config.attrs.push_back(AttrSpec::StringPool("tag", {"x", "y"}));
  return config;
}

TEST(StreamGeneratorTest, DeterministicForSeed) {
  Schema s1, s2;
  StreamGenerator g1(SmallConfig(7), &s1);
  StreamGenerator g2(SmallConfig(7), &s2);
  std::vector<Event> e1 = g1.Generate();
  std::vector<Event> e2 = g2.Generate();
  ASSERT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].type(), e2[i].type());
    EXPECT_EQ(e1[i].ts(), e2[i].ts());
    EXPECT_EQ(e1[i].attrs().size(), e2[i].attrs().size());
    for (size_t a = 0; a < e1[i].attrs().size(); ++a) {
      EXPECT_TRUE(e1[i].attrs()[a].second.Equals(e2[i].attrs()[a].second));
    }
  }
  Schema s3;
  StreamGenerator g3(SmallConfig(8), &s3);
  std::vector<Event> e3 = g3.Generate();
  bool differs = false;
  for (size_t i = 0; i < e1.size() && !differs; ++i) {
    differs = e1[i].type() != e3[i].type() || e1[i].ts() != e3[i].ts();
  }
  EXPECT_TRUE(differs);
}

TEST(StreamGeneratorTest, TimestampsNonDecreasing) {
  Schema schema;
  StreamGenerator gen(SmallConfig(3), &schema);
  std::vector<Event> events = gen.Generate();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts(), events[i - 1].ts());
  }
}

TEST(StreamGeneratorTest, WeightsRoughlyRespected) {
  Schema schema;
  StreamConfig config = SmallConfig(5);
  config.num_events = 8000;
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  size_t counts[3] = {0, 0, 0};
  for (const Event& e : events) ++counts[e.type()];
  // B has weight 2 vs 1: expect roughly twice as frequent (loose bounds).
  EXPECT_GT(counts[1], counts[0] * 3 / 2);
  EXPECT_GT(counts[1], counts[2] * 3 / 2);
  EXPECT_GT(counts[0], 1000u);
  EXPECT_GT(counts[2], 1000u);
}

TEST(StreamGeneratorTest, AttributeRangesRespected) {
  Schema schema;
  StreamGenerator gen(SmallConfig(9), &schema);
  std::vector<Event> events = gen.Generate();
  AttrId id = *schema.FindAttribute("id");
  AttrId w = *schema.FindAttribute("w");
  AttrId price = *schema.FindAttribute("price");
  AttrId tag = *schema.FindAttribute("tag");
  for (const Event& e : events) {
    int64_t v = e.GetAttr(id).AsInt64();
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    double d = e.GetAttr(w).AsDouble();
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 2.0);
    EXPECT_GT(e.GetAttr(price).AsDouble(), 0.0);  // prices stay positive
    const std::string& t = e.GetAttr(tag).AsString();
    EXPECT_TRUE(t == "x" || t == "y");
  }
}

TEST(StreamGeneratorTest, GenerateNContinues) {
  Schema schema;
  StreamGenerator gen(SmallConfig(4), &schema);
  std::vector<Event> first = gen.GenerateN(10);
  std::vector<Event> second = gen.GenerateN(10);
  EXPECT_GE(second.front().ts(), first.back().ts());
}

TEST(VectorSourceTest, YieldsAllAndResets) {
  Schema schema;
  StreamGenerator gen(SmallConfig(2), &schema);
  VectorSource source(gen.GenerateN(25));
  Event e;
  size_t n = 0;
  while (source.Next(&e)) ++n;
  EXPECT_EQ(n, 25u);
  EXPECT_FALSE(source.Next(&e));
  source.Reset();
  EXPECT_TRUE(source.Next(&e));
}

// --------------------------------------------------------------------------
// Presets
// --------------------------------------------------------------------------

TEST(StockStreamTest, DefaultsMatchPaperTraceSize) {
  StockStreamOptions options;
  options.num_events = 2000;  // keep the test fast; default is 120k
  Schema schema;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  EXPECT_EQ(events.size(), 2000u);
  EXPECT_EQ(schema.num_event_types(), 10u);
  ASSERT_TRUE(schema.FindEventType("DELL").ok());
  ASSERT_TRUE(schema.FindEventType("QQQ").ok());
  ASSERT_TRUE(schema.FindAttribute("price").ok());
  ASSERT_TRUE(schema.FindAttribute("volume").ok());
  ASSERT_TRUE(schema.FindAttribute("traderId").ok());
  StockStreamOptions defaults;
  EXPECT_EQ(defaults.num_events, 120000u);  // the paper's trace portion
}

TEST(StockStreamTest, TraderIdsBounded) {
  StockStreamOptions options;
  options.num_events = 500;
  options.num_traders = 5;
  Schema schema;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AttrId trader = *schema.FindAttribute("traderId");
  std::set<int64_t> ids;
  for (const Event& e : events) ids.insert(e.GetAttr(trader).AsInt64());
  EXPECT_LE(ids.size(), 5u);
  EXPECT_GE(ids.size(), 3u);
}

TEST(ClickstreamTest, TypesAndAttrs) {
  ClickstreamOptions options;
  options.num_events = 1000;
  Schema schema;
  std::vector<Event> events = GenerateClickstream(options, &schema);
  EXPECT_EQ(events.size(), 1000u);
  ASSERT_TRUE(schema.FindEventType("ViewKindle").ok());
  ASSERT_TRUE(schema.FindEventType("ClickSubmit").ok());
  AttrId ip = *schema.FindAttribute("ip");
  for (const Event& e : events) {
    EXPECT_FALSE(e.GetAttr(ip).is_null());
  }
}

// --------------------------------------------------------------------------
// Trace I/O
// --------------------------------------------------------------------------

TEST(TraceIoTest, RoundTrip) {
  Schema schema;
  StreamGenerator gen(SmallConfig(6), &schema);
  std::vector<Event> events = gen.GenerateN(50);
  std::string text = FormatTrace(events, schema);
  Schema schema2;
  auto parsed = ParseTrace(text, &schema2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(schema2.EventTypeName((*parsed)[i].type()),
              schema.EventTypeName(events[i].type()));
    EXPECT_EQ((*parsed)[i].ts(), events[i].ts());
  }
}

TEST(TraceIoTest, ParsesTypedValues) {
  Schema schema;
  auto parsed = ParseTrace(
      "# comment line\n"
      "DELL,100,price=24.5,volume=300,note=hello\n"
      "\n"
      "IPIX,101,delta=-2\n",
      &schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  const Event& e = (*parsed)[0];
  EXPECT_EQ(e.GetAttr(*schema.FindAttribute("price")).type(),
            ValueType::kDouble);
  EXPECT_EQ(e.GetAttr(*schema.FindAttribute("volume")).type(),
            ValueType::kInt64);
  EXPECT_EQ(e.GetAttr(*schema.FindAttribute("note")).type(),
            ValueType::kString);
  EXPECT_EQ((*parsed)[1].GetAttr(*schema.FindAttribute("delta")).AsInt64(),
            -2);
}

TEST(TraceIoTest, RejectsMalformedLines) {
  Schema schema;
  EXPECT_FALSE(ParseTrace("DELL\n", &schema).ok());
  EXPECT_FALSE(ParseTrace("DELL,abc\n", &schema).ok());
  EXPECT_FALSE(ParseTrace("DELL,100,price\n", &schema).ok());
  // Out-of-order timestamps violate the in-order stream assumption.
  EXPECT_FALSE(ParseTrace("DELL,100\nIPIX,99\n", &schema).ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  Schema schema;
  StreamGenerator gen(SmallConfig(11), &schema);
  std::vector<Event> events = gen.GenerateN(20);
  std::string path = ::testing::TempDir() + "/aseq_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, events, schema).ok());
  Schema schema2;
  auto parsed = ReadTraceFile(path, &schema2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 20u);
  EXPECT_FALSE(ReadTraceFile("/nonexistent/path.csv", &schema2).ok());
}

// --------------------------------------------------------------------------
// Workload generator
// --------------------------------------------------------------------------

TEST(WorkloadTest, PrefixSharedShape) {
  SharedWorkload w = MakePrefixSharedWorkload(4, 3, 6, 2000);
  ASSERT_EQ(w.queries.size(), 4u);
  EXPECT_EQ(w.shared_types.size(), 3u);
  for (const Query& q : w.queries) {
    ASSERT_EQ(q.pattern.size(), 6u);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(q.pattern.elements()[j].type_name, w.shared_types[j]);
    }
    EXPECT_EQ(q.window_ms, 2000);
    EXPECT_EQ(q.agg.func, AggFunc::kCount);
  }
  // Suffixes are query-private.
  EXPECT_NE(w.queries[0].pattern.elements()[3].type_name,
            w.queries[1].pattern.elements()[3].type_name);
  // Universe: 3 shared + 4 queries x 3 private.
  EXPECT_EQ(w.all_types.size(), 3u + 12u);
}

TEST(WorkloadTest, SubstringSharedShape) {
  SharedWorkload w = MakeSubstringSharedWorkload(3, 2, 3, 1, 1000);
  ASSERT_EQ(w.queries.size(), 3u);
  for (const Query& q : w.queries) {
    ASSERT_EQ(q.pattern.size(), 6u);
    // Shared block at positions 2..4.
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(q.pattern.elements()[2 + j].type_name, w.shared_types[j]);
    }
  }
  EXPECT_EQ(w.all_types.size(), 3u + 3u * 3u);
}

TEST(WorkloadTest, PrefixOnlyEqualsFullSharing) {
  SharedWorkload w = MakePrefixSharedWorkload(2, 4, 4, 1000);
  // prefix_len == total_len: identical queries.
  EXPECT_TRUE(w.queries[0].pattern == w.queries[1].pattern);
}

TEST(WorkloadTest, StreamConfigCoversUniverse) {
  SharedWorkload w = MakeSubstringSharedWorkload(2, 1, 2, 1, 1000);
  StreamConfig config = MakeWorkloadStreamConfig(w, 1, 100, 0, 2);
  EXPECT_EQ(config.types.size(), w.all_types.size());
  EXPECT_EQ(config.num_events, 100u);
}

}  // namespace
}  // namespace aseq
