// Snapshot wire-format robustness: the Writer/Reader primitives round-trip
// every scalar exactly, and every way a snapshot file can be damaged —
// truncation at any byte, flipped magic, version skew, checksum corruption,
// trailing garbage, wrong engine name — fails with a precise Status and
// never undefined behavior. Also checks the atomic write protocol: a
// published snapshot exists in full or not at all, with no .tmp litter.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/ckpt.h"
#include "ckpt/snapshot.h"
#include "common/event.h"
#include "common/value.h"

namespace aseq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/ckpt-io-" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Writer/Reader round-trips
// ---------------------------------------------------------------------------

TEST(CkptIoTest, ScalarRoundTrip) {
  ckpt::Writer w;
  w.WriteU8(0xAB);
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(std::numeric_limits<uint64_t>::max());
  w.WriteI64(std::numeric_limits<int64_t>::min());
  w.WriteI64(-1);
  w.WriteDouble(3.141592653589793);
  w.WriteDouble(-0.0);
  w.WriteString("hello \0 world");
  w.WriteString("");

  ckpt::Reader r(w.buffer());
  uint8_t u8 = 0;
  bool b = false;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8, "u8").ok());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(r.ReadBool(&b, "b1").ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(r.ReadBool(&b, "b2").ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(r.ReadU32(&u32, "u32").ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.ReadU64(&u64, "u64").ok());
  EXPECT_EQ(u64, std::numeric_limits<uint64_t>::max());
  ASSERT_TRUE(r.ReadI64(&i64, "i64min").ok());
  EXPECT_EQ(i64, std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(r.ReadI64(&i64, "minus1").ok());
  EXPECT_EQ(i64, -1);
  ASSERT_TRUE(r.ReadDouble(&d, "pi").ok());
  EXPECT_EQ(d, 3.141592653589793);
  ASSERT_TRUE(r.ReadDouble(&d, "negzero").ok());
  EXPECT_EQ(d, -0.0);
  EXPECT_TRUE(std::signbit(d));
  ASSERT_TRUE(r.ReadString(&s, "str").ok());
  EXPECT_EQ(s, std::string("hello \0 world"));
  ASSERT_TRUE(r.ReadString(&s, "empty").ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(CkptIoTest, ValueAndEventRoundTrip) {
  ckpt::Writer w;
  ckpt::WriteValue(&w, Value());
  ckpt::WriteValue(&w, Value(static_cast<int64_t>(-42)));
  ckpt::WriteValue(&w, Value(2.5));
  ckpt::WriteValue(&w, Value(std::string("abc")));
  Event e;
  e.set_type(7);
  e.set_ts(-123);
  e.set_seq(99);
  e.SetAttr(3, Value(static_cast<int64_t>(5)));
  e.SetAttr(1, Value(std::string("x")));
  ckpt::WriteEvent(&w, e);

  ckpt::Reader r(w.buffer());
  Value v;
  ASSERT_TRUE(ckpt::ReadValue(&r, &v).ok());
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(ckpt::ReadValue(&r, &v).ok());
  EXPECT_EQ(v.AsInt64(), -42);
  ASSERT_TRUE(ckpt::ReadValue(&r, &v).ok());
  EXPECT_EQ(v.AsDouble(), 2.5);
  ASSERT_TRUE(ckpt::ReadValue(&r, &v).ok());
  EXPECT_EQ(v.AsString(), "abc");
  Event back;
  ASSERT_TRUE(ckpt::ReadEvent(&r, &back).ok());
  EXPECT_EQ(back.type(), e.type());
  EXPECT_EQ(back.ts(), e.ts());
  EXPECT_EQ(back.seq(), e.seq());
  ASSERT_NE(back.FindAttr(3), nullptr);
  EXPECT_EQ(back.FindAttr(3)->AsInt64(), 5);
  ASSERT_NE(back.FindAttr(1), nullptr);
  EXPECT_EQ(back.FindAttr(1)->AsString(), "x");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(CkptIoTest, ReaderRejectsTruncationEverywhere) {
  ckpt::Writer w;
  w.WriteU64(77);
  w.WriteString("payload");
  w.WriteDouble(1.5);
  const std::string full(w.buffer());
  // Every proper prefix must fail with ParseError — never crash or read
  // out of bounds.
  for (size_t len = 0; len < full.size(); ++len) {
    ckpt::Reader r(std::string_view(full.data(), len));
    uint64_t u = 0;
    std::string s;
    double d = 0;
    Status st = r.ReadU64(&u, "u");
    if (st.ok()) st = r.ReadString(&s, "s");
    if (st.ok()) st = r.ReadDouble(&d, "d");
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes parsed fully";
    // The message names the field and the byte shortfall — either as a
    // truncation or as a count exceeding the remaining payload.
    EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  }
}

TEST(CkptIoTest, ReaderRejectsBadBool) {
  ckpt::Writer w;
  w.WriteU8(2);
  ckpt::Reader r(w.buffer());
  bool b = false;
  Status st = r.ReadBool(&b, "flag");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CkptIoTest, ReadCountGuardsHugeCounts) {
  // A corrupt count field claiming 2^60 elements must be rejected by the
  // remaining-bytes bound, not attempted as an allocation.
  ckpt::Writer w;
  w.WriteU64(1ull << 60);
  ckpt::Reader r(w.buffer());
  uint64_t n = 0;
  Status st = r.ReadCount(&n, /*min_elem_bytes=*/8, "elements");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CkptIoTest, ExpectEndRejectsTrailingBytes) {
  ckpt::Writer w;
  w.WriteU32(1);
  w.WriteU8(0);
  ckpt::Reader r(w.buffer());
  uint32_t u = 0;
  ASSERT_TRUE(r.ReadU32(&u, "u").ok());
  Status st = r.ExpectEnd();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Snapshot file validation
// ---------------------------------------------------------------------------

TEST(CkptIoTest, SnapshotFileRoundTrip) {
  const std::string path = TempPath("roundtrip.aseqckpt");
  ASSERT_TRUE(
      ckpt::WriteSnapshotFile(path, "TestEngine", 12345, "payload-bytes")
          .ok());
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(info.engine_name, "TestEngine");
  EXPECT_EQ(info.stream_offset, 12345u);
  EXPECT_EQ(payload, "payload-bytes");
  std::remove(path.c_str());
}

TEST(CkptIoTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = TempPath("atomic.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "x").ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind after publish";
  std::remove(path.c_str());
}

TEST(CkptIoTest, WriteToMissingDirectoryIsIoError) {
  Status st = ckpt::WriteSnapshotFile(
      ::testing::TempDir() + "/no-such-dir-xyz/snap.aseqckpt", "E", 1, "x");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
}

TEST(CkptIoTest, ReadMissingFileIsIoError) {
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(TempPath("never-written.aseqckpt"),
                                     &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
}

TEST(CkptIoTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "x").ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'Z';
  WriteFileBytes(path, bytes);
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("magic"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

TEST(CkptIoTest, RejectsVersionSkew) {
  const std::string path = TempPath("verskew.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "x").ok());
  std::string bytes = ReadFileBytes(path);
  bytes[8] = static_cast<char>(ckpt::kSnapshotFormatVersion + 1);
  WriteFileBytes(path, bytes);
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("version"), std::string::npos) << st.ToString();
  std::remove(path.c_str());
}

// Version 2 (flat partition store) restructured every HPC payload:
// interner table + slab geometry replaced the bucket-ordered node list. A
// v1 file must be rejected at the header — before any payload parsing
// could misread old bytes as new structure — with a message naming both
// the file's version and the version this build reads.
TEST(CkptIoTest, RejectsOldFormatVersion) {
  static_assert(ckpt::kSnapshotFormatVersion >= 2,
                "this test fakes a version-1 file; it must be old");
  const std::string path = TempPath("verold.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "x").ok());
  std::string bytes = ReadFileBytes(path);
  bytes[8] = 1;  // u32 LE version field starts right after the magic
  bytes[9] = 0;
  bytes[10] = 0;
  bytes[11] = 0;
  WriteFileBytes(path, bytes);
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("version 1"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("version " +
                              std::to_string(ckpt::kSnapshotFormatVersion)),
            std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(CkptIoTest, RejectsChecksumCorruption) {
  const std::string path = TempPath("badsum.aseqckpt");
  ASSERT_TRUE(
      ckpt::WriteSnapshotFile(path, "Engine", 42, "important-state").ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one bit in the body (past the 20-byte header).
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
  WriteFileBytes(path, bytes);
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(CkptIoTest, RejectsTruncatedFileAtEveryLength) {
  const std::string path = TempPath("truncated.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "Engine", 7, "state").ok());
  const std::string full = ReadFileBytes(path);
  for (size_t len = 0; len < full.size(); ++len) {
    WriteFileBytes(path, full.substr(0, len));
    ckpt::SnapshotInfo info;
    std::string payload;
    Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
    EXPECT_FALSE(st.ok()) << "accepted a " << len << "-byte prefix of a "
                          << full.size() << "-byte snapshot";
    EXPECT_EQ(st.code(), StatusCode::kParseError)
        << "len=" << len << ": " << st.ToString();
  }
  std::remove(path.c_str());
}

TEST(CkptIoTest, RejectsTrailingGarbage) {
  const std::string path = TempPath("trailing.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "x").ok());
  WriteFileBytes(path, ReadFileBytes(path) + "junk");
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  std::remove(path.c_str());
}

// The durable-write protocol is write-tmp, fsync-tmp, rename, fsync-dir:
// overwriting a published snapshot must go through the same path —
// replacing the contents atomically with no .tmp litter — including when
// the target path has no directory component (the parent to fsync is ".").
TEST(CkptIoTest, OverwritePublishesAtomicallyAndDurably) {
  const std::string path = TempPath("overwrite.aseqckpt");
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 1, "old-state").ok());
  ASSERT_TRUE(ckpt::WriteSnapshotFile(path, "E", 2, "new-state").ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind after overwrite";
  ckpt::SnapshotInfo info;
  std::string payload;
  Status st = ckpt::ReadSnapshotFile(path, &info, &payload);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(info.stream_offset, 2u);
  EXPECT_EQ(payload, "new-state");
  std::remove(path.c_str());
}

TEST(CkptIoTest, WritesBareRelativePath) {
  // No '/' in the path: the parent directory to sync is the working
  // directory, which must not trip the post-rename fsync.
  const std::string name = "ckpt-io-bare-relative.aseqckpt";
  Status st = ckpt::WriteSnapshotFile(name, "E", 3, "rel");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ckpt::SnapshotInfo info;
  std::string payload;
  ASSERT_TRUE(ckpt::ReadSnapshotFile(name, &info, &payload).ok());
  EXPECT_EQ(payload, "rel");
  std::remove(name.c_str());
}

TEST(CkptIoTest, SnapshotPathForOffsetSortsNumerically) {
  std::string a = ckpt::SnapshotPathForOffset("d", 999);
  std::string b = ckpt::SnapshotPathForOffset("d", 1000);
  std::string c = ckpt::SnapshotPathForOffset("d", 10000000000ull);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(a.find("ckpt-"), std::string::npos);
  EXPECT_NE(a.find(".aseqckpt"), std::string::npos);
}

TEST(CkptIoTest, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(ckpt::Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(ckpt::Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(ckpt::Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace aseq
