// Application I of the paper (Sec. 1): network security.
//
// Count, per source IP, the click sequence "type a username, type a
// password, submit" inside a 10-second window. A brute-force attack makes
// the count for one IP rise abnormally; the monitor below flags any IP
// whose count crosses a threshold.
//
// (The paper's WHERE clause `TypePassword.value != TypeUsername.Password`
// is a general join predicate, which A-Seq by design does not support —
// Sec. 3.4 covers local and equivalence predicates only. We mark failed
// attempts with a local predicate on an `ok` flag instead, which pushes
// into A-Seq; the stack-based baseline in this repository evaluates the
// original join form if you need it.)

#include <cstdio>
#include <map>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/clickstream.h"

using namespace aseq;

int main() {
  Schema schema;

  // Background traffic: many users logging in from many IPs.
  ClickstreamOptions options;
  options.seed = 2026;
  options.num_events = 20000;
  options.num_ips = 12;
  options.max_gap_ms = 20;
  std::vector<Event> events = GenerateClickstream(options, &schema);

  // Inject a brute-force burst from one IP: rapid failed login sequences.
  EventTypeId user = schema.RegisterEventType("TypeUsername");
  EventTypeId pass = schema.RegisterEventType("TypePassword");
  EventTypeId submit = schema.RegisterEventType("ClickSubmit");
  AttrId ip = schema.RegisterAttribute("ip");
  AttrId ok = schema.RegisterAttribute("ok");
  Timestamp t = events.back().ts() + 100;
  for (int i = 0; i < 40; ++i) {
    for (EventTypeId type : {user, pass, submit}) {
      Event e(type, t);
      e.SetAttr(ip, Value("66.66.66.66"));
      e.SetAttr(ok, Value(0));  // wrong password
      events.push_back(e);
      t += 5;
    }
  }
  AssignSeqNums(&events);

  Analyzer analyzer(&schema);
  auto query = analyzer.AnalyzeText(
      "PATTERN SEQ(TypeUsername, TypePassword, ClickSubmit) "
      "WHERE TypePassword.ok = 0 "
      "GROUP BY ip AGG COUNT WITHIN 10s");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto engine = CreateAseqEngine(*query);

  constexpr int64_t kAlertThreshold = 500;
  std::map<std::string, int64_t> worst;
  std::vector<Output> outputs;
  for (const Event& e : events) {
    outputs.clear();
    engine->get()->OnEvent(e, &outputs);
    for (const Output& output : outputs) {
      const std::string key = output.group->ToString();
      int64_t count = output.value.AsInt64();
      if (count > worst[key]) worst[key] = count;
      if (count == kAlertThreshold) {
        std::printf("ALERT t=%lld: IP %s crossed %lld failed-login "
                    "sequences within 10s — blocking\n",
                    static_cast<long long>(output.ts), key.c_str(),
                    static_cast<long long>(kAlertThreshold));
      }
    }
  }

  std::printf("\npeak failed-login sequence count per IP (10s window):\n");
  for (const auto& [key, count] : worst) {
    std::printf("  %-15s %8lld%s\n", key.c_str(),
                static_cast<long long>(count),
                count >= kAlertThreshold ? "  <-- attacker" : "");
  }
  std::printf("\nengine: %s, %llu events, peak state objects: %lld\n",
              engine->get()->name().c_str(),
              static_cast<unsigned long long>(
                  engine->get()->stats().events_processed),
              static_cast<long long>(
                  engine->get()->stats().objects.peak()));
  return 0;
}
