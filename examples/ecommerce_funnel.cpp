// Application II of the paper (Sec. 1): e-commerce click analytics.
//
//   PATTERN SEQ(Kindle, KindleCase, Stylus)
//   WHERE   Kindle.userId = KindleCase.userId = Stylus.userId
//   AGG COUNT WITHIN 1hour
//
// "How many users buy a Kindle, then a Kindle case, then a stylus within
// one hour?" The equivalence predicate partitions the stream per user
// (Hashed Prefix Counter, Sec. 3.4). For contrast, the same query also runs
// on the stack-based two-step baseline — same answers, orders of magnitude
// more work.

#include <cstdio>

#include "aseq/aseq_engine.h"
#include "baseline/stack_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/generator.h"

using namespace aseq;

int main() {
  Schema schema;

  // Purchase stream: buys of three products plus unrelated noise clicks,
  // stamped with the purchasing user.
  StreamConfig config;
  config.seed = 7;
  config.num_events = 30000;
  config.min_gap_ms = 0;
  config.max_gap_ms = 2000;  // ~1 purchase/second across the site
  config.types = {{"Kindle", 1.0},
                  {"KindleCase", 1.0},
                  {"Stylus", 1.0},
                  {"Browse", 12.0}};
  config.attrs.push_back(AttrSpec::IntUniform("userId", 0, 199));
  config.attrs.push_back(AttrSpec::DoubleUniform("price", 5.0, 120.0));
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();
  AssignSeqNums(&events);

  Analyzer analyzer(&schema);
  auto query = analyzer.AnalyzeText(
      "PATTERN SEQ(Kindle, KindleCase, Stylus) "
      "WHERE Kindle.userId = KindleCase.userId = Stylus.userId "
      "AGG COUNT WITHIN 1hour");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  auto aseq_engine = CreateAseqEngine(*query);
  RunResult aseq_run = Runtime::RunEvents(events, aseq_engine->get());

  StackEngine stack_engine(*query);
  RunResult stack_run = Runtime::RunEvents(events, &stack_engine);

  // Both engines deliver a result on every Stylus purchase; show the last
  // few and confirm full agreement.
  size_t disagreements = 0;
  for (size_t i = 0; i < aseq_run.outputs.size(); ++i) {
    if (!aseq_run.outputs[i].value.Equals(stack_run.outputs[i].value)) {
      ++disagreements;
    }
  }
  std::printf("funnel completions within the last hour (latest results):\n");
  size_t shown = 0;
  for (size_t i = aseq_run.outputs.size(); i > 0 && shown < 5; --i, ++shown) {
    const Output& output = aseq_run.outputs[i - 1];
    std::printf("  t=%-9lld count=%s\n", static_cast<long long>(output.ts),
                output.value.ToString().c_str());
  }

  std::printf("\n%-22s %12s %14s\n", "engine", "ms/slide", "peak objects");
  std::printf("%-22s %12.5f %14lld\n", aseq_engine->get()->name().c_str(),
              aseq_run.MillisPerSlide(),
              static_cast<long long>(
                  aseq_engine->get()->stats().objects.peak()));
  std::printf("%-22s %12.5f %14lld\n", stack_engine.name().c_str(),
              stack_run.MillisPerSlide(),
              static_cast<long long>(stack_engine.stats().objects.peak()));
  std::printf("\noutputs: %zu, disagreements: %zu\n",
              aseq_run.outputs.size(), disagreements);
  return disagreements == 0 ? 0 : 1;
}
