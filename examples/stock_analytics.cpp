// Stock-stream analytics on the synthetic stand-in for the WPI trade trace
// the paper evaluates on (see DESIGN.md §3), exercising:
//
//   * the negation queries of Fig. 14(b):
//       q1 = SEQ(DELL, IPIX, AMAT)
//       q2 = SEQ(DELL, IPIX, !QQQ, AMAT)
//   * MAX/AVG aggregates over a pattern attribute (Sec. 5),
//   * trace export/import via the CSV trace format (drop-in point for the
//     real trace).

#include <cstdio>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"
#include "stream/trace_io.h"

using namespace aseq;

namespace {

void RunAndSummarize(Schema* schema, const std::vector<Event>& events,
                     const char* text) {
  Analyzer analyzer(schema);
  auto query = analyzer.AnalyzeText(text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return;
  }
  auto engine = CreateAseqEngine(*query);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return;
  }
  RunResult result = Runtime::RunEvents(events, engine->get());
  Value last;
  for (const Output& output : result.outputs) last = output.value;
  std::printf("  %-55s -> %8s results, last=%-10s %.5f ms/slide\n", text,
              std::to_string(result.outputs.size()).c_str(),
              last.ToString().c_str(), result.MillisPerSlide());
}

}  // namespace

int main() {
  Schema schema;
  StockStreamOptions options;
  options.seed = 14;
  options.num_events = 20000;
  options.max_gap_ms = 6;
  std::vector<Event> events = GenerateStockStream(options, &schema);
  AssignSeqNums(&events);

  std::printf("stock stream: %zu events, %zu tickers\n\n", events.size(),
              schema.num_event_types());

  std::printf("negation (Fig. 14(b) queries):\n");
  RunAndSummarize(&schema, events,
                  "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1s");
  RunAndSummarize(&schema, events,
                  "PATTERN SEQ(DELL, IPIX, !QQQ, AMAT) AGG COUNT WITHIN 1s");

  std::printf("\naggregates over pattern attributes (Sec. 5):\n");
  RunAndSummarize(&schema, events,
                  "PATTERN SEQ(DELL, INTC) AGG MAX(DELL.price) WITHIN 2s");
  RunAndSummarize(&schema, events,
                  "PATTERN SEQ(DELL, INTC) AGG MIN(INTC.price) WITHIN 2s");
  RunAndSummarize(&schema, events,
                  "PATTERN SEQ(DELL, INTC) AGG AVG(INTC.volume) WITHIN 2s");
  RunAndSummarize(
      &schema, events,
      "PATTERN SEQ(MSFT, CSCO) WHERE MSFT.traderId = CSCO.traderId "
      "AGG SUM(CSCO.volume) WITHIN 5s");

  // Round-trip a slice of the stream through the CSV trace format — the
  // same reader ingests the real WPI trace after a trivial reshape.
  std::vector<Event> slice(events.begin(), events.begin() + 1000);
  std::string path = "/tmp/aseq_stock_trace.csv";
  Status st = WriteTraceFile(path, slice, schema);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Schema schema2;
  auto reread = ReadTraceFile(path, &schema2);
  if (!reread.ok()) {
    std::fprintf(stderr, "%s\n", reread.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntrace round-trip: wrote %zu events to %s, re-read %zu\n",
              slice.size(), path.c_str(), reread->size());
  return 0;
}
