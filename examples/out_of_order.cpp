// Out-of-order streams (the paper's Sec. 8 future work, implemented here
// via a K-slack reordering front-end).
//
// A stock stream is delivered with bounded disorder (network jitter up to
// ~80ms). Feeding it raw to an in-order engine silently under-counts;
// wrapping the engine in ReorderingEngine restores the exact in-order
// answers at the price of bounded result delay.

#include <algorithm>
#include <cstdio>

#include "aseq/aseq_engine.h"
#include "common/rng.h"
#include "engine/reordering_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/stock_stream.h"

using namespace aseq;

namespace {

int64_t FinalCount(const std::vector<Output>& outputs) {
  for (auto it = outputs.rbegin(); it != outputs.rend(); ++it) {
    if (!it->value.is_null()) return it->value.AsInt64();
  }
  return -1;
}

}  // namespace

int main() {
  Schema schema;
  StockStreamOptions options;
  options.seed = 3;
  options.num_events = 30000;
  // Strictly increasing timestamps: with ties, no reorderer can recover
  // the original tie order, so exact reproduction needs distinct stamps.
  options.min_gap_ms = 1;
  options.max_gap_ms = 6;
  std::vector<Event> in_order = GenerateStockStream(options, &schema);

  // Simulate network jitter: each event is delayed by up to 80ms, then the
  // stream is delivered in (jittered) arrival order.
  Rng rng(99);
  std::vector<std::pair<Timestamp, Event>> jittered;
  jittered.reserve(in_order.size());
  for (const Event& e : in_order) {
    jittered.emplace_back(e.ts() + rng.NextInt(0, 80), e);
  }
  std::stable_sort(jittered.begin(), jittered.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<Event> disordered;
  disordered.reserve(jittered.size());
  for (auto& [arrival, e] : jittered) disordered.push_back(e);

  size_t inversions = 0;
  for (size_t i = 1; i < disordered.size(); ++i) {
    if (disordered[i].ts() < disordered[i - 1].ts()) ++inversions;
  }
  std::printf("stream: %zu events, %zu adjacent inversions after jitter\n\n",
              disordered.size(), inversions);

  Analyzer analyzer(&schema);
  auto query = analyzer.AnalyzeText(
      "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 2s");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  // Ground truth: the in-order stream.
  auto ref_engine = CreateAseqEngine(*query);
  std::vector<Event> sorted = in_order;
  AssignSeqNums(&sorted);
  RunResult ref = Runtime::RunEvents(sorted, ref_engine->get());

  // Naive: feed the disordered stream to an in-order engine.
  auto naive_engine = CreateAseqEngine(*query);
  std::vector<Event> disordered_seq = disordered;
  AssignSeqNums(&disordered_seq);
  RunResult naive = Runtime::RunEvents(disordered_seq, naive_engine->get());

  // Fixed: K-slack front-end sized to the jitter bound.
  auto inner = CreateAseqEngine(*query);
  ReorderingEngine fixed(std::move(*inner), /*slack_ms=*/80);
  std::vector<Output> fixed_outputs;
  SeqNum seq = 0;
  for (Event e : disordered) {
    e.set_seq(seq++);
    fixed.OnEvent(e, &fixed_outputs);
  }
  fixed.Finish(&fixed_outputs);

  std::printf("%-28s %10s %16s\n", "run", "results", "final count");
  std::printf("%-28s %10zu %16lld\n", "in-order (ground truth)",
              ref.outputs.size(), static_cast<long long>(FinalCount(ref.outputs)));
  std::printf("%-28s %10zu %16lld   <- wrong\n", "disordered, raw engine",
              naive.outputs.size(),
              static_cast<long long>(FinalCount(naive.outputs)));
  std::printf("%-28s %10zu %16lld   <- matches, dropped=%llu\n",
              "disordered + K-slack(80ms)", fixed_outputs.size(),
              static_cast<long long>(FinalCount(fixed_outputs)),
              static_cast<unsigned long long>(fixed.dropped_events()));

  bool exact = fixed_outputs.size() == ref.outputs.size();
  for (size_t i = 0; exact && i < fixed_outputs.size(); ++i) {
    exact = fixed_outputs[i].value.Equals(ref.outputs[i].value);
  }
  std::printf("\nK-slack run %s the in-order results exactly.\n",
              exact ? "reproduces" : "DOES NOT reproduce");
  return exact ? 0 : 1;
}
