// Application III of the paper (Sec. 1): credit-card fraud detection.
//
// A suspicious pattern: the same card performs an online authorization
// followed by two rapid purchases within 10 minutes, with a large total
// value. We watch, per card, both
//   * the COUNT of the pattern, and
//   * the SUM of purchase values over all pattern matches (Sec. 5 pushes
//     SUM into the prefix counters),
// and raise an alert when the aggregate value crosses $10,000.

#include <cstdio>
#include <map>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/generator.h"

using namespace aseq;

int main() {
  Schema schema;

  StreamConfig config;
  config.seed = 99;
  config.num_events = 40000;
  config.min_gap_ms = 0;
  config.max_gap_ms = 800;
  config.types = {{"Auth", 1.0}, {"Purchase", 2.0}, {"Ping", 6.0}};
  config.attrs.push_back(AttrSpec::IntUniform("card", 0, 299));
  config.attrs.push_back(AttrSpec::DoubleUniform("amount", 5.0, 400.0));
  StreamGenerator gen(config, &schema);
  std::vector<Event> events = gen.Generate();

  // Inject a fraud burst on one card: repeated auth+purchase+purchase with
  // large amounts in a tight loop.
  EventTypeId auth = schema.RegisterEventType("Auth");
  EventTypeId purchase = schema.RegisterEventType("Purchase");
  AttrId card = schema.RegisterAttribute("card");
  AttrId amount = schema.RegisterAttribute("amount");
  Timestamp t = events.back().ts() + 50;
  for (int burst = 0; burst < 12; ++burst) {
    for (EventTypeId type : {auth, purchase, purchase}) {
      Event e(type, t);
      e.SetAttr(card, Value(777777));
      e.SetAttr(amount, Value(350.0 + burst));
      events.push_back(e);
      t += 40;
    }
  }
  AssignSeqNums(&events);

  Analyzer analyzer(&schema);
  auto sum_query = analyzer.AnalyzeText(
      "PATTERN SEQ(Auth, Purchase, Purchase) "
      "GROUP BY card AGG SUM(Auth.amount) WITHIN 10min");
  if (!sum_query.ok()) {
    std::fprintf(stderr, "%s\n", sum_query.status().ToString().c_str());
    return 1;
  }
  auto engine = CreateAseqEngine(*sum_query);

  constexpr double kAlertValue = 10000.0;
  std::map<std::string, double> peak_exposure;
  bool alerted = false;
  std::vector<Output> outputs;
  for (const Event& e : events) {
    outputs.clear();
    engine->get()->OnEvent(e, &outputs);
    for (const Output& output : outputs) {
      if (output.value.is_null()) continue;
      double exposure = output.value.AsDouble();
      const std::string key = output.group->ToString();
      if (exposure > peak_exposure[key]) peak_exposure[key] = exposure;
      if (exposure > kAlertValue && !alerted) {
        alerted = true;
        std::printf(
            "ALERT t=%lld: card %s — $%.0f aggregated over suspicious "
            "auth+2-purchase patterns within 10min; blocking transactions\n",
            static_cast<long long>(output.ts), key.c_str(), exposure);
      }
    }
  }

  std::printf("\ntop aggregated exposure per card (10min window):\n");
  std::multimap<double, std::string> ranked;
  for (const auto& [key, value] : peak_exposure) ranked.emplace(value, key);
  int shown = 0;
  for (auto it = ranked.rbegin(); it != ranked.rend() && shown < 5;
       ++it, ++shown) {
    std::printf("  card %-8s $%10.2f%s\n", it->second.c_str(), it->first,
                it->first > kAlertValue ? "  <-- fraud" : "");
  }
  return alerted ? 0 : 1;
}
