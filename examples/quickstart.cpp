// Quickstart: parse a CEP aggregation query, feed an event stream, and read
// online aggregation results — no sequence match is ever materialized.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "aseq/aseq_engine.h"
#include "engine/runtime.h"
#include "query/analyzer.h"
#include "stream/stream_source.h"

using namespace aseq;

int main() {
  // 1. A schema interns event-type and attribute names to dense ids.
  Schema schema;

  // 2. Parse + analyze a query in the paper's query language.
  //    COUNT the sequences "A then B then C" whose first and last events
  //    are at most 10 seconds apart (sliding window).
  Analyzer analyzer(&schema);
  auto query = analyzer.AnalyzeText(
      "PATTERN SEQ(A, B, C) AGG COUNT WITHIN 10s");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. Build the A-Seq engine (here: SEM, Start Event Marking, since the
  //    query has a sliding window).
  auto engine = CreateAseqEngine(*query);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: %s\n", (*engine)->name().c_str());

  // 4. Hand-craft a tiny stream: a1 b1 c1 a2 c2 — and one late c3 after a1
  //    expired from the window.
  EventTypeId a = schema.RegisterEventType("A");
  EventTypeId b = schema.RegisterEventType("B");
  EventTypeId c = schema.RegisterEventType("C");
  std::vector<Event> events = {
      Event(a, 1000), Event(b, 2000),  Event(c, 3000),
      Event(a, 4000), Event(c, 5000),  Event(c, 14000),
  };
  VectorSource source(std::move(events));

  // 5. Run. Results are delivered whenever a TRIG instance (here: C)
  //    completes the pattern.
  RunResult result = Runtime::Run(&source, engine->get());
  for (const Output& output : result.outputs) {
    std::printf("t=%-6lld count=%s\n", static_cast<long long>(output.ts),
                output.value.ToString().c_str());
  }
  // Expected:
  //   t=3000  count=1      (a1,b1,c1)
  //   t=5000  count=2      + (a1,b1,c2)
  //   t=14000 count=0      a1 expired; no sequences survive

  std::printf("processed %llu events in %.3f ms (%.5f ms/slide)\n",
              static_cast<unsigned long long>(result.events),
              result.elapsed_seconds * 1e3, result.MillisPerSlide());
  return 0;
}
