// Multi-query sharing (Sec. 4): the paper's Example 6 workload (type names
// spelled out to match the clickstream generator) —
//
//   Q1 = SEQ(ViewKindle, BuyKindle, ViewCase, BuyCase)
//   Q2 = SEQ(ViewKindle, BuyKindle, ViewKindleFire)
//   Q3 = SEQ(ViewKindle, BuyKindle, ViewCase, BuyCase, ViewEBook, BuyEBook)
//   Q4 = SEQ(ViewKindle, BuyKindle, ViewCase, BuyCase, ViewLight, BuyLight)
//   Q5 = SEQ(ViewIPad, ViewKindleFire, ViewKindle, BuyKindle)
//
// Q1..Q4 share prefixes (PreTree, Sec. 4.1); Q5 shares (ViewKindle,
// BuyKindle) at its tail, which needs Chop-Connect (Sec. 4.2). The example
// runs the workload three ways — unshared A-Seq, PreTree on Q1..Q4,
// Chop-Connect on all five — verifies the answers agree, and reports the
// per-slide cost.

#include <cstdio>
#include <map>

#include "engine/runtime.h"
#include "multi/chop_connect_engine.h"
#include "multi/chop_plan.h"
#include "multi/nonshared_engine.h"
#include "multi/pretree_engine.h"
#include "query/analyzer.h"
#include "stream/clickstream.h"

using namespace aseq;

namespace {

Query MakeQuery(std::vector<std::string> names) {
  Query q;
  q.pattern = Pattern::FromNames(names);
  q.agg = AggregateSpec::Count();
  q.window_ms = 60 * 1000;
  return q;
}

using OutputMap = std::map<std::pair<size_t, SeqNum>, int64_t>;

OutputMap ToMap(const std::vector<MultiOutput>& outputs) {
  OutputMap m;
  for (const MultiOutput& mo : outputs) {
    m[{mo.query_index, mo.output.seq}] = mo.output.value.AsInt64();
  }
  return m;
}

}  // namespace

int main() {
  Schema schema;
  ClickstreamOptions options;
  options.seed = 5;
  options.num_events = 60000;
  options.max_gap_ms = 40;
  std::vector<Event> events = GenerateClickstream(options, &schema);
  AssignSeqNums(&events);

  std::vector<Query> queries = {
      MakeQuery({"ViewKindle", "BuyKindle", "ViewCase", "BuyCase"}),
      MakeQuery({"ViewKindle", "BuyKindle", "ViewKindleFire"}),
      MakeQuery({"ViewKindle", "BuyKindle", "ViewCase", "BuyCase", "ViewEBook", "BuyEBook"}),
      MakeQuery({"ViewKindle", "BuyKindle", "ViewCase", "BuyCase", "ViewLight", "BuyLight"}),
      MakeQuery({"ViewIPad", "ViewKindleFire", "ViewKindle", "BuyKindle"}),
  };
  Analyzer analyzer(&schema);
  std::vector<CompiledQuery> compiled;
  for (const Query& q : queries) {
    auto cq = analyzer.Analyze(q);
    if (!cq.ok()) {
      std::fprintf(stderr, "%s\n", cq.status().ToString().c_str());
      return 1;
    }
    compiled.push_back(std::move(cq).value());
  }

  // 1. Unshared: one A-Seq engine per query.
  auto nonshared = NonSharedEngine::CreateAseq(compiled);
  MultiRunResult ns = Runtime::RunMultiEvents(events, nonshared->get());

  // 2. Prefix sharing on Q1..Q4 (they all start with VKindle).
  std::vector<CompiledQuery> prefix_group(compiled.begin(),
                                          compiled.begin() + 4);
  auto pretree = PreTreeEngine::Create(prefix_group);
  if (!pretree.ok()) {
    std::fprintf(stderr, "%s\n", pretree.status().ToString().c_str());
    return 1;
  }
  MultiRunResult pt = Runtime::RunMultiEvents(events, pretree->get());

  // 3. Chop-Connect over all five queries (the greedy planner picks the
  //    most-shared substring).
  ChopPlan plan = PlanChopConnect(compiled);
  std::printf("Chop-Connect plan:\n  %s\n\n", plan.ToString(schema).c_str());
  auto cc = ChopConnectEngine::Create(compiled, plan);
  if (!cc.ok()) {
    std::fprintf(stderr, "%s\n", cc.status().ToString().c_str());
    return 1;
  }
  MultiRunResult cr = Runtime::RunMultiEvents(events, cc->get());

  // Verify agreement.
  OutputMap ns_map = ToMap(ns.outputs);
  OutputMap pt_map = ToMap(pt.outputs);
  OutputMap cc_map = ToMap(cr.outputs);
  size_t mismatches = 0;
  for (const auto& [key, value] : pt_map) {
    if (ns_map.count(key) == 0 || ns_map[key] != value) ++mismatches;
  }
  for (const auto& [key, value] : cc_map) {
    if (ns_map.count(key) == 0 || ns_map[key] != value) ++mismatches;
  }
  std::printf("%-28s %12s %14s\n", "strategy", "ms/slide", "outputs");
  std::printf("%-28s %12.5f %14zu\n", "NonShare (5 queries)",
              ns.MillisPerSlide(), ns.outputs.size());
  std::printf("%-28s %12.5f %14zu\n", "PreTree   (Q1..Q4)",
              pt.MillisPerSlide(), pt.outputs.size());
  std::printf("%-28s %12.5f %14zu\n", "ChopConnect (5 queries)",
              cr.MillisPerSlide(), cr.outputs.size());
  std::printf("\nmismatches vs unshared execution: %zu\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
